"""Figure 12 — sensitivity to the checkpoint interval.

The baseline improves as the interval grows (hot keys collapse onto fewer
checkpointed versions and the burst comes less often); Check-In is steady
regardless, because its checkpoints are nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.tables import format_table
from repro.common.units import MIB, MS
from repro.experiments.base import QUICK, ExperimentScale, paper_config
from repro.system.metrics import safe_ratio
from repro.system.system import run_config

SENSITIVITY_MODES = ("baseline", "checkin")


@dataclass
class Fig12Result:
    """Throughput/latency per (config, interval)."""

    intervals_ms: List[int] = field(default_factory=list)
    throughput_qps: Dict[str, List[float]] = field(default_factory=dict)
    latency_us: Dict[str, List[float]] = field(default_factory=dict)

    def table(self) -> str:
        """Render the figure's rows as an ASCII table."""
        rows = []
        for index, interval in enumerate(self.intervals_ms):
            row: List = [interval]
            for mode in SENSITIVITY_MODES:
                row.append(self.throughput_qps[mode][index])
                row.append(self.latency_us[mode][index])
            rows.append(row)
        headers = ["interval_ms"]
        for mode in SENSITIVITY_MODES:
            headers += [f"{mode}_qps", f"{mode}_lat_us"]
        return format_table(headers, rows, float_format=".0f",
                            title="Figure 12: checkpoint-interval sensitivity")

    def spread_pct(self, mode: str) -> float:
        """Relative throughput spread across intervals (sensitivity)."""
        series = self.throughput_qps[mode]
        low, high = min(series), max(series)
        return safe_ratio(high - low, high) * 100.0


def run_fig12(scale: ExperimentScale = QUICK,
              intervals_ms: Sequence[int] = (15, 30, 60, 120, 240)
              ) -> Fig12Result:
    """Sweep the checkpoint interval for baseline and Check-In."""
    result = Fig12Result(intervals_ms=list(intervals_ms))
    for mode in SENSITIVITY_MODES:
        qps: List[float] = []
        lat: List[float] = []
        for interval_ms in intervals_ms:
            config = paper_config(
                mode, scale,
                checkpoint_interval_ns=interval_ms * MS,
                checkpoint_journal_quota=24 * MIB,
            )
            metrics = run_config(config).metrics
            qps.append(metrics.throughput_qps())
            lat.append(metrics.latency_all.mean() / 1e3)
        result.throughput_qps[mode] = qps
        result.latency_us[mode] = lat
    return result
