"""Figure 10 — checkpointing time versus thread count, per configuration.

As in the paper's methodology, query processing is locked while the
checkpoint runs so the measured duration is the checkpoint itself, not a
mixture with query service.  More threads journal more data per interval,
so the checkpoint grows — except for the remapping configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.tables import format_table
from repro.experiments.base import ALL_MODES, QUICK, ExperimentScale, paper_config
from repro.system.metrics import safe_ratio
from repro.system.system import run_config


@dataclass
class Fig10Result:
    """Mean checkpoint duration (ms) per (config, threads)."""

    threads: List[int] = field(default_factory=list)
    ckpt_ms: Dict[str, List[float]] = field(default_factory=dict)

    def table(self) -> str:
        """Render the figure's rows as an ASCII table."""
        headers = ["threads"] + list(self.ckpt_ms)
        rows = []
        for index, thread_count in enumerate(self.threads):
            rows.append([thread_count] +
                        [self.ckpt_ms[mode][index] for mode in self.ckpt_ms])
        return format_table(headers, rows,
                            title="Figure 10: checkpointing time (ms) "
                                  "vs threads (queries locked)")

    def at_max_threads(self, mode: str) -> float:
        """Mean checkpoint duration at the largest thread count (ms)."""
        return self.ckpt_ms[mode][-1]

    def series(self, mode: str) -> List[float]:
        """One configuration's durations over the thread sweep."""
        return list(self.ckpt_ms[mode])


def run_fig10(scale: ExperimentScale = QUICK,
              thread_sweep: Sequence[int] = None) -> Fig10Result:
    """Measure locked-checkpoint durations across the thread sweep."""
    threads_list = list(thread_sweep if thread_sweep is not None
                        else scale.thread_sweep)
    result = Fig10Result(threads=threads_list)
    for mode in ALL_MODES:
        series: List[float] = []
        for threads in threads_list:
            config = paper_config(
                mode, scale,
                threads=threads,
                workload="WO",
                total_queries=scale.scaled_queries(0.6),
                lock_queries_during_checkpoint=True,
            )
            run = run_config(config)
            reports = run.checkpoint_reports
            mean_ms = safe_ratio(sum(r.duration_ns for r in reports),
                                 len(reports)) / 1e6
            series.append(mean_ms)
        result.ckpt_ms[mode] = series
    return result
