"""Figure 13 — mapping-unit sensitivity and space overhead.

(a) query throughput as the FTL mapping unit grows from 512 B to 4 KiB,
    for ISC-C and Check-In: larger units cut metadata overhead, and only
    Check-In converts that into remapping gains (its journaling aligns to
    whatever unit is configured);
(b) the cost: alignment padding — space overhead of Check-In over ISC-C
    for the four mixed record-size patterns (~3 % at 4 KiB units in the
    paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.experiments.base import QUICK, ExperimentScale, paper_config
from repro.system.metrics import safe_ratio
from repro.system.system import run_config

UNIT_MODES = ("isc_c", "checkin")


@dataclass
class Fig13aResult:
    """Throughput per (config, mapping unit)."""

    units: List[int] = field(default_factory=list)
    throughput_qps: Dict[str, List[float]] = field(default_factory=dict)
    remapped_units: Dict[str, List[int]] = field(default_factory=dict)

    def table(self) -> str:
        """Render the figure's rows as an ASCII table."""
        rows = []
        for index, unit in enumerate(self.units):
            rows.append([unit] +
                        [self.throughput_qps[mode][index]
                         for mode in UNIT_MODES] +
                        [self.remapped_units["checkin"][index]])
        return format_table(
            ["mapping_unit"] + [f"{m}_qps" for m in UNIT_MODES] +
            ["checkin_remaps"],
            rows, float_format=".0f",
            title="Figure 13(a): throughput vs mapping unit size")

    def gain_at(self, unit: int) -> float:
        """Check-In/ISC-C throughput ratio at one mapping unit."""
        index = self.units.index(unit)
        iscc = self.throughput_qps["isc_c"][index]
        return safe_ratio(self.throughput_qps["checkin"][index], iscc)


def run_fig13a(scale: ExperimentScale = QUICK,
               units: Sequence[int] = (512, 1024, 2048, 4096)) -> Fig13aResult:
    """Throughput sweep over the mapping unit for ISC-C and Check-In."""
    result = Fig13aResult(units=list(units))
    for mode in UNIT_MODES:
        qps: List[float] = []
        remaps: List[int] = []
        for unit in units:
            config = paper_config(
                mode, scale,
                mapping_unit=unit,
                size_spec="P4",       # the study's 128-4096 B record mix
                threads=64,           # large transactions, as in the paper
                total_queries=scale.scaled_queries(0.6),
            )
            metrics = run_config(config).metrics
            qps.append(metrics.throughput_qps())
            remaps.append(metrics.remapped_units())
        result.throughput_qps[mode] = qps
        result.remapped_units[mode] = remaps
    return result


@dataclass
class Fig13bResult:
    """Space overhead of Check-In over ISC-C, per pattern and unit."""

    patterns: List[str] = field(default_factory=list)
    units: List[int] = field(default_factory=list)
    journal_bytes: Dict[Tuple[str, str, int], int] = field(default_factory=dict)

    def overhead_pct(self, pattern: str, unit: int) -> float:
        """Space overhead of Check-In over ISC-C (%)."""
        iscc = self.journal_bytes[("isc_c", pattern, unit)]
        checkin = self.journal_bytes[("checkin", pattern, unit)]
        return safe_ratio(checkin - iscc, iscc) * 100.0

    def table(self) -> str:
        """Render the figure's rows as an ASCII table."""
        rows = []
        for pattern in self.patterns:
            rows.append([pattern] + [self.overhead_pct(pattern, unit)
                                     for unit in self.units])
        return format_table(
            ["pattern"] + [f"overhead%@{unit}" for unit in self.units],
            rows, title="Figure 13(b): Check-In space overhead vs ISC-C")

    def max_overhead_at(self, unit: int) -> float:
        """Worst-case overhead across the patterns at one unit size."""
        return max(self.overhead_pct(p, unit) for p in self.patterns)


def run_fig13b(scale: ExperimentScale = QUICK,
               patterns: Sequence[str] = ("P1", "P2", "P3", "P4"),
               units: Sequence[int] = (512, 4096)) -> Fig13bResult:
    """Measure journal footprint (stored bytes) per pattern and unit."""
    result = Fig13bResult(patterns=list(patterns), units=list(units))
    for pattern in patterns:
        for unit in units:
            for mode in UNIT_MODES:
                config = paper_config(
                    mode, scale,
                    mapping_unit=unit,
                    size_spec=pattern,
                    workload="WO",
                    total_queries=scale.scaled_queries(0.35),
                )
                metrics = run_config(config).metrics
                result.journal_bytes[(mode, pattern, unit)] = \
                    metrics.journal_stored_bytes()
    return result
