"""Figure 8 — write amplification and flash lifetime.

(a) redundant writes versus checkpoint interval, all five configurations;
(b) GC invocations versus write-query count, plus the Equation (1)
    lifetime estimate (Check-In extends lifetime 3.86x over baseline,
    1.81x over ISC-C in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.compare import reduction_pct
from repro.analysis.tables import format_table
from repro.common.units import MIB, MS
from repro.experiments import expectations
from repro.experiments.base import ALL_MODES, QUICK, ExperimentScale, paper_config
from repro.system.metrics import safe_ratio
from repro.system.system import run_config

GC_MODES = ("baseline", "isc_a", "isc_b", "isc_c", "checkin")


@dataclass
class Fig8aResult:
    """Redundant write bytes per (interval, config)."""

    intervals_ms: List[int] = field(default_factory=list)
    redundant_mib: Dict[str, List[float]] = field(default_factory=dict)

    def table(self) -> str:
        """Render the figure's rows as an ASCII table."""
        headers = ["interval_ms"] + list(self.redundant_mib)
        rows = []
        for index, interval in enumerate(self.intervals_ms):
            rows.append([interval] + [self.redundant_mib[mode][index]
                                      for mode in self.redundant_mib])
        return format_table(headers, rows,
                            title="Figure 8(a): redundant writes (MiB) "
                                  "vs checkpoint interval")

    def mean_redundant(self, mode: str) -> float:
        """Mean redundant MiB across the interval sweep."""
        series = self.redundant_mib[mode]
        return safe_ratio(sum(series), len(series))

    def checkin_vs_baseline_pct(self) -> float:
        """Check-In's redundant-write reduction vs the baseline (%)."""
        return reduction_pct(self.mean_redundant("baseline"),
                             self.mean_redundant("checkin"))

    def checkin_vs_iscc_pct(self) -> float:
        """Check-In's redundant-write reduction vs ISC-C (%)."""
        return reduction_pct(self.mean_redundant("isc_c"),
                             self.mean_redundant("checkin"))


def run_fig8a(scale: ExperimentScale = QUICK,
              intervals_ms: Sequence[int] = (20, 40, 60, 120)) -> Fig8aResult:
    """Sweep the checkpoint interval for every configuration."""
    result = Fig8aResult(intervals_ms=list(intervals_ms))
    for mode in ALL_MODES:
        series: List[float] = []
        for interval_ms in intervals_ms:
            config = paper_config(
                mode, scale, workload="WO",
                checkpoint_interval_ns=interval_ms * MS,
                checkpoint_journal_quota=24 * MIB,
                total_queries=scale.scaled_queries(0.8))
            metrics = run_config(config).metrics
            series.append(metrics.redundant_write_bytes() / MIB)
        result.redundant_mib[mode] = series
    return result


@dataclass
class Fig8bResult:
    """GC invocations and erases per (write-query count, config)."""

    query_counts: List[int] = field(default_factory=list)
    gc_counts: Dict[str, List[int]] = field(default_factory=dict)
    erase_counts: Dict[str, List[int]] = field(default_factory=dict)
    operation_time_ns: Dict[str, int] = field(default_factory=dict)
    max_pe_cycles: int = 3000

    def table(self) -> str:
        """Render the figure's rows as an ASCII table."""
        headers = ["write_queries"] + [f"{m}_gc" for m in self.gc_counts]
        rows = []
        for index, count in enumerate(self.query_counts):
            rows.append([count] + [self.gc_counts[mode][index]
                                   for mode in self.gc_counts])
        return format_table(headers, rows,
                            title="Figure 8(b): GC invocations vs write "
                                  "query count")

    def total_gc(self, mode: str) -> int:
        """Total GC invocations across the query-count sweep."""
        return sum(self.gc_counts[mode])

    def gc_vs_baseline_pct(self) -> float:
        """Check-In's GC reduction vs the baseline (%)."""
        return reduction_pct(self.total_gc("baseline"), self.total_gc("checkin"))

    def gc_vs_iscc_pct(self) -> float:
        """Check-In's GC reduction vs ISC-C (%)."""
        return reduction_pct(self.total_gc("isc_c"), self.total_gc("checkin"))

    def relative_lifetime(self, mode: str) -> float:
        """Equation (1): PEC_max * T_op / BEC, at equal work.

        T_op is normalised to the common workload (the largest query
        count) rather than each run's wall time, so configurations are
        compared at the same number of operations served.
        """
        erases = self.erase_counts[mode][-1]
        work = self.query_counts[-1]
        if erases == 0:
            return float("inf")
        return self.max_pe_cycles * work / erases

    def lifetime_vs_baseline(self) -> float:
        """Equation (1) lifetime factor, Check-In over baseline."""
        return self.relative_lifetime("checkin") / \
            self.relative_lifetime("baseline")

    def lifetime_vs_iscc(self) -> float:
        """Equation (1) lifetime factor, Check-In over ISC-C."""
        return self.relative_lifetime("checkin") / \
            self.relative_lifetime("isc_c")

    def lifetime_table(self) -> str:
        """Render the Equation (1) rows."""
        rows = []
        for mode in self.erase_counts:
            erases = self.erase_counts[mode][-1]
            rows.append([mode, erases,
                         self.relative_lifetime(mode) / 1e3])
        rows.append(["checkin/baseline", "",
                     self.lifetime_vs_baseline()])
        rows.append(["paper", "", expectations.EQ1_LIFETIME_VS_BASELINE])
        return format_table(
            ["config", "erases", "rel lifetime (kilo-ops/PE)"],
            rows, title="Equation (1): lifetime estimate at equal work")


def run_fig8b(scale: ExperimentScale = QUICK,
              query_counts: Sequence[int] = (12_000, 24_000, 36_000),
              modes: Sequence[str] = GC_MODES) -> Fig8bResult:
    """GC pressure study on a small device so the journal ring wraps."""
    result = Fig8bResult(query_counts=list(query_counts))
    for mode in modes:
        gc_series: List[int] = []
        erase_series: List[int] = []
        for queries in query_counts:
            config = paper_config(
                mode, scale, workload="WO",
                total_queries=queries,
                num_keys=2_048,
                blocks_per_plane=5,           # ~20 MiB device: ring wraps
                journal_area_bytes=6 * MIB,
                checkpoint_interval_ns=10 ** 12,
                checkpoint_journal_quota=2 * MIB,
                gc_high_watermark=10,
            )
            metrics = run_config(config).metrics
            gc_series.append(metrics.gc_invocations())
            erase_series.append(metrics.erase_count())
            result.operation_time_ns[mode] = metrics.duration_ns
        result.gc_counts[mode] = gc_series
        result.erase_counts[mode] = erase_series
        result.max_pe_cycles = 3000
    return result
