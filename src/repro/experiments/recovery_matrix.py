"""RPO/RTO matrix: local restart vs snapshot+replay vs warm replica.

Not a paper figure — the robustness extension's headline table.  Three
recovery strategies are measured against the *same* seeded
kill-the-primary campaign (``repro.replication.campaign``):

* **spor_local** — the paper's own story: the node restarts in place
  and replays its durable local journal (:func:`timed_restart`, with
  the Check-In device pre-read assist when the mode supports it).
  RPO is zero — every acked write was journaled locally — but RTO
  carries the full journal replay.
* **snapshot_replay** — disaster recovery on a *fresh* node:
  ``fetch_checkpoint`` over the replication link, instant-validated
  install, then journal replay of the shipped suffix through the real
  apply path (:func:`~repro.replication.campaign.cold_restore`).
* **warm_replica** — promote-on-failure
  (:meth:`~repro.replication.replica.ReplicatedPair.promote`): the
  continuously-replaying replica drains the wire and serves.

All clocks are simulated, so the matrix is seed-deterministic; the
warm-vs-cold mean-RTO ratio is the number the gated
``rto_warm_replica_ns`` bench metric guards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.common.rng import SeededRng
from repro.engine.recovery import timed_restart
from repro.experiments.base import QUICK, ExperimentScale
from repro.replication.campaign import (
    CampaignResult,
    campaign_config,
    kill_primary_campaign,
)
from repro.replication.replica import (
    DEFAULT_FAILOVER_DETECT_NS,
    ReplicatedPair,
)
from repro.replication.ship import LinkSpec
from repro.sim.process import spawn
from repro.system.system import KvSystem

MATRIX_SEED = 11
"""One fixed seed for the whole matrix — the campaign digest pins it."""

KILL_FRAC = 0.6
"""The dedicated spor_local wreck is cut at this fraction of the
reference run's merged steps: past the first checkpoints, journal
re-filled — the regime where replay cost is representative."""


@dataclass
class StrategyRow:
    """One recovery strategy's measured row of the matrix."""

    strategy: str
    rto_ns: float
    rpo_ops: float
    points: int
    detail: str


@dataclass
class RecoveryMatrixResult:
    """The full matrix: three strategies against one seeded campaign."""

    scale: str
    mode: str
    ops: int
    num_keys: int
    crash_points: int
    rows: List[StrategyRow]
    campaign_digest: str

    def row(self, strategy: str) -> StrategyRow:
        for row in self.rows:
            if row.strategy == strategy:
                return row
        raise KeyError(f"unknown strategy {strategy!r}; "
                       f"known: {[r.strategy for r in self.rows]}")

    def rto_ns(self, strategy: str) -> float:
        return self.row(strategy).rto_ns

    def rpo_ops(self, strategy: str) -> float:
        return self.row(strategy).rpo_ops

    def warm_speedup(self) -> float:
        """Snapshot+replay mean RTO over warm-promote mean RTO."""
        warm = self.rto_ns("warm_replica")
        return self.rto_ns("snapshot_replay") / warm if warm else 0.0

    def table(self) -> str:
        lines = [f"recovery matrix ({self.scale} scale, mode={self.mode}, "
                 f"{self.crash_points} crash points, {self.ops} ops, "
                 f"campaign digest {self.campaign_digest})",
                 f"{'strategy':>16} {'RTO ms':>9} {'RPO ops':>8} "
                 f"{'points':>6}  detail"]
        for row in self.rows:
            lines.append(f"{row.strategy:>16} {row.rto_ns / 1e6:>9.3f} "
                         f"{row.rpo_ops:>8.1f} {row.points:>6}  "
                         f"{row.detail}")
        lines.append(f"warm promote vs snapshot+replay RTO: "
                     f"{self.warm_speedup():.2f}x faster")
        return "\n".join(lines)


def _spor_writer(system: KvSystem, puts: List[int]
                 ) -> Generator[Any, Any, int]:
    """Re-drive the primary's put history into a solo node, trimming
    the journal at the same checkpoint quota the primary ran under —
    so the journal left behind matches what a local restart replays."""
    engine = system.engine
    quota = system.config.checkpoint_journal_quota
    for key in puts:
        if engine.journal_pressure() >= quota \
                and not engine.checkpoint_running:
            yield from engine.checkpoint()
        yield from engine.put(key)
    return len(puts)


def measure_spor_local(mode: str, seed: int, ops: int, num_keys: int,
                       link: Optional[LinkSpec] = None,
                       failover_detect_ns: int = DEFAULT_FAILOVER_DETECT_NS,
                       kill_frac: float = KILL_FRAC) -> StrategyRow:
    """Local-restart RTO for the same wreck the campaign kills.

    Runs one replicated pair to ``kill_frac`` of the reference step
    count, kills the primary, then rebuilds its put history on a solo
    node (same config, same checkpoint-quota trimming) and times
    :func:`timed_restart` there — the primary's own simulator is dead,
    so its journal replay is re-enacted on a live clock.  RTO =
    restart-decision lag + journal replay + first served read; RPO = 0
    (the local journal is durable across the power cut).
    """
    config = campaign_config(mode=mode, seed=seed, ops=ops,
                             num_keys=num_keys)
    pair = ReplicatedPair(config, link=link)
    pair.start()
    total_steps, _ = pair.run_workload()
    pair.stop()

    pair = ReplicatedPair(config, link=link)
    pair.start()
    kill_step = max(1, int(total_steps * kill_frac))
    pair.run_workload(kill_step=kill_step)
    rng = SeededRng(seed).fork("recovery-matrix/spor")
    pair.kill_primary(rng)
    puts = [key for _offset, key, _version, _nbytes in pair.log.entries]
    pair.stop()

    solo = KvSystem(config)
    solo.load()
    solo.engine.start()
    writer = spawn(solo.sim, _spor_writer(solo, puts), name="spor-writer")
    solo.sim.run_until_triggered(writer, name="spor-writer")
    if not writer.ok:
        raise writer.exception

    restart_from = solo.sim.now
    restart = spawn(solo.sim, timed_restart(
        solo.engine, device_preread=(mode == "checkin")),
        name="spor-restart")
    solo.sim.run_until_triggered(restart, name="spor-restart")
    if not restart.ok:
        raise restart.exception
    timing = restart.value
    first_key = puts[-1] if puts else 0
    first = spawn(solo.sim, solo.engine.get(first_key),
                  name="spor-first-read")
    solo.sim.run_until_triggered(first, name="spor-first-read")
    if not first.ok:
        raise first.exception
    served_ns = solo.sim.now - restart_from
    solo.engine.shutdown()
    return StrategyRow(
        strategy="spor_local",
        rto_ns=float(failover_detect_ns + served_ns),
        rpo_ops=0.0, points=1,
        detail=f"replayed {timing.journal_sectors_read} journal sectors "
               f"in {timing.read_commands} commands "
               f"(preread={'on' if mode == 'checkin' else 'off'})")


def _campaign_rows(campaign: CampaignResult) -> List[StrategyRow]:
    warm = StrategyRow(
        strategy="warm_replica",
        rto_ns=campaign.mean_rto_ns("warm"),
        rpo_ops=campaign.mean_rpo_ops("warm"),
        points=len(campaign.points),
        detail="replica drains wire, promotes, serves")
    cold = StrategyRow(
        strategy="snapshot_replay",
        rto_ns=campaign.mean_rto_ns("snapshot"),
        rpo_ops=campaign.mean_rpo_ops("snapshot"),
        points=len(campaign.points),
        detail="fetch_checkpoint + install + shipped-suffix replay")
    return [warm, cold]


def run_recovery_matrix(scale: ExperimentScale = QUICK,
                        mode: str = "checkin",
                        link: Optional[LinkSpec] = None
                        ) -> RecoveryMatrixResult:
    """The RPO/RTO matrix at one scale (registered as
    ``recovery_matrix``)."""
    ops = max(160, min(640, scale.queries // 64))
    num_keys = max(64, min(256, scale.keys // 32))
    crash_points = max(6, min(16, scale.queries // 2_000))
    campaign = kill_primary_campaign(
        mode=mode, crash_points=crash_points, seed=MATRIX_SEED,
        ops=ops, num_keys=num_keys, link=link)
    if not campaign.ok:
        raise AssertionError(
            f"recovery matrix campaign violated the durability contract "
            f"at {len(campaign.failures())} points")
    spor = measure_spor_local(mode=mode, seed=MATRIX_SEED, ops=ops,
                              num_keys=num_keys, link=link)
    rows = [spor] + _campaign_rows(campaign)
    return RecoveryMatrixResult(
        scale=scale.name, mode=mode, ops=ops, num_keys=num_keys,
        crash_points=crash_points, rows=rows,
        campaign_digest=campaign.digest())


RTO_PROBE_POINTS = 6
"""Crash points in the compact bench probe — small enough to ride along
every ``repro bench``, seeded so the mean is exactly reproducible."""


def bench_rto_probe(mode: str = "checkin") -> float:
    """The gated ``rto_warm_replica_ns`` bench metric.

    Mean warm-promote RTO (ns) over a compact seeded kill-the-primary
    campaign.  Fully deterministic (simulated clocks), so
    ``benchmarks/regress.py`` holds it to a tolerance band; a regression
    here means failover suddenly takes longer to serve its first read.
    """
    campaign = kill_primary_campaign(
        mode=mode, crash_points=RTO_PROBE_POINTS, seed=MATRIX_SEED,
        ops=160, num_keys=64)
    if not campaign.ok:
        raise AssertionError("bench RTO probe campaign violated the "
                             "durability contract")
    return campaign.mean_rto_ns("warm")
