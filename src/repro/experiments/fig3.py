"""Figure 3 — the motivation study (baseline system only).

(a) I/O and flash-operation amplification caused by checkpointing, for
    uniform and Zipfian request distributions;
(b) checkpointing time versus thread count, and the latest-version ratio
    that explains the distribution gap;
(c) query latency during checkpointing versus the run average, split by
    reads and writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.tables import format_table
from repro.common.units import MIB
from repro.experiments import expectations
from repro.experiments.base import QUICK, ExperimentScale, paper_config
from repro.system.metrics import safe_ratio
from repro.system.system import run_config


@dataclass
class Fig3aResult:
    """Amplification rows: one per distribution."""

    rows: List[Dict[str, float]] = field(default_factory=list)

    def table(self) -> str:
        """Render the figure's rows as an ASCII table."""
        return format_table(
            ["distribution", "io_amp", "paper_io", "flash_amp", "paper_flash"],
            [[r["distribution"], r["io_amp"], r["paper_io"],
              r["flash_amp"], r["paper_flash"]] for r in self.rows],
            title="Figure 3(a): amplification vs write-query bytes (baseline)")

    def amp(self, distribution: str, kind: str) -> float:
        """Look up one measured amplification factor."""
        for row in self.rows:
            if row["distribution"] == distribution:
                return row[f"{kind}_amp"]
        raise KeyError(distribution)


def run_fig3a(scale: ExperimentScale = QUICK) -> Fig3aResult:
    """Measure baseline amplification for uniform and zipfian requests.

    Uses a write-only workload over a key population large enough that a
    uniform epoch's latest-version ratio stays high (the paper's setting);
    checkpoints are quota-triggered so both runs checkpoint equally often
    per byte journaled.
    """
    result = Fig3aResult()
    paper = {
        "uniform": (expectations.FIG3A_IO_AMP_UNIFORM,
                    expectations.FIG3A_FLASH_AMP_UNIFORM),
        "zipfian": (expectations.FIG3A_IO_AMP_ZIPFIAN,
                    expectations.FIG3A_FLASH_AMP_ZIPFIAN),
    }
    for distribution in ("uniform", "zipfian"):
        config = paper_config(
            "baseline", scale,
            workload="WO",
            distribution=distribution,
            num_keys=max(scale.keys, scale.queries),
            checkpoint_journal_quota=3 * MIB,
            checkpoint_interval_ns=10 ** 12,  # quota-driven only
        )
        metrics = run_config(config).metrics
        paper_io, paper_flash = paper[distribution]
        result.rows.append({
            "distribution": distribution,
            "io_amp": metrics.io_amplification(),
            "paper_io": paper_io,
            "flash_amp": metrics.flash_amplification(),
            "paper_flash": paper_flash,
        })
    return result


@dataclass
class Fig3bResult:
    """Checkpoint time and latest-version ratio per (distribution, threads)."""

    rows: List[Dict[str, float]] = field(default_factory=list)

    def table(self) -> str:
        """Render the figure's rows as an ASCII table."""
        return format_table(
            ["distribution", "threads", "ckpt_ms", "normalized",
             "latest_ratio"],
            [[r["distribution"], r["threads"], r["ckpt_ms"],
              r["normalized"], r["latest_ratio"]] for r in self.rows],
            title="Figure 3(b): checkpointing time vs threads (baseline)")

    def series(self, distribution: str, key: str = "normalized") -> List[float]:
        """One distribution's series over the thread sweep."""
        return [r[key] for r in self.rows if r["distribution"] == distribution]

    def latest_ratio_factor(self) -> float:
        """uniform/zipfian latest-ratio at the highest thread count."""
        uniform = self.series("uniform", "latest_ratio")[-1]
        zipfian = self.series("zipfian", "latest_ratio")[-1]
        return safe_ratio(uniform, zipfian, default=float("inf"))


def run_fig3b(scale: ExperimentScale = QUICK) -> Fig3bResult:
    """Checkpoint duration growth with thread count, per distribution."""
    result = Fig3bResult()
    for distribution in ("uniform", "zipfian"):
        base_ms = None
        for threads in scale.thread_sweep:
            config = paper_config(
                "baseline", scale,
                workload="WO",
                distribution=distribution,
                threads=threads,
                num_keys=max(scale.keys, scale.queries),
                total_queries=scale.scaled_queries(0.6),
            )
            run = run_config(config)
            reports = run.checkpoint_reports
            ckpt_ms = safe_ratio(sum(r.duration_ns for r in reports),
                                 len(reports)) / 1e6
            latest = (sum(r.entries_checkpointed for r in reports) /
                      max(1, sum(r.entries_total for r in reports)))
            if base_ms is None:
                base_ms = ckpt_ms or 1.0
            result.rows.append({
                "distribution": distribution,
                "threads": threads,
                "ckpt_ms": ckpt_ms,
                "normalized": safe_ratio(ckpt_ms, base_ms),
                "latest_ratio": latest,
            })
    return result


@dataclass
class Fig3cResult:
    """Latency during checkpointing vs overall average (baseline)."""

    read_avg_us: float = 0.0
    read_ckpt_us: float = 0.0
    write_avg_us: float = 0.0
    write_ckpt_us: float = 0.0

    @property
    def read_slowdown(self) -> float:
        return safe_ratio(self.read_ckpt_us, self.read_avg_us)

    @property
    def write_slowdown(self) -> float:
        return safe_ratio(self.write_ckpt_us, self.write_avg_us)

    def table(self) -> str:
        """Render the figure's rows as an ASCII table."""
        return format_table(
            ["op", "avg_us", "during_ckpt_us", "slowdown", "paper_slowdown"],
            [["read", self.read_avg_us, self.read_ckpt_us,
              self.read_slowdown, expectations.FIG3C_READ_SLOWDOWN],
             ["write", self.write_avg_us, self.write_ckpt_us,
              self.write_slowdown, expectations.FIG3C_WRITE_SLOWDOWN]],
            title="Figure 3(c): latency during checkpointing (baseline)")


def run_fig3c(scale: ExperimentScale = QUICK) -> Fig3cResult:
    """Compare in-checkpoint query latency with the run average.

    Uses the moderately utilised device of the tail study (8 channels,
    16 threads) so the steady state is not already saturated and the
    checkpoint burst stands out, as on the paper's real machine.
    """
    config = paper_config("baseline", scale, workload="A",
                          distribution="zipfian",
                          threads=16, channels=8,
                          total_queries=scale.scaled_queries(1.25),
                          checkpoint_interval_ns=scale.interval_ns // 2)
    metrics = run_config(config).metrics
    return Fig3cResult(
        read_avg_us=metrics.latency_read.mean() / 1e3,
        read_ckpt_us=metrics.latency_read_ckpt.mean() / 1e3,
        write_avg_us=metrics.latency_update.mean() / 1e3,
        write_ckpt_us=metrics.latency_update_ckpt.mean() / 1e3,
    )
