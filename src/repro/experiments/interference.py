"""Multi-tenant checkpoint interference — the shared-device QoS question.

Two tenants share one SSD through NVMe-style namespaces: a *storm*
tenant that writes continuously under an aggressive checkpoint policy,
and a *reader* tenant running a read-only workload.  The experiment
measures how much the storm's *checkpoints* degrade the reader's p99
read latency, comparing host-level checkpointing (baseline: journal
travels device→host→device) against in-storage remap checkpointing
(checkin).

Raw write traffic from the storm also queues against the reader, and
the two modes sustain very different foreground write rates — so the
reader runs in three placements per mode:

* ``solo``   — reader alone on the device (uncontended floor);
* ``quiet``  — storm co-located but with mid-run checkpoints
  suppressed (write contention only);
* ``shared`` — storm co-located and checkpointing aggressively;
* ``locked`` — ``shared`` plus the engine's consistency gate
  (``lock_queries_during_checkpoint``), the RocksDB-style policy where
  the store blocks queries while its checkpoint is cut.

Checkpoint-attributable degradation is ``shared / quiet``: the same
foreground write pressure, with and without checkpoints.  The paper's
§V claim — remapping steals no bandwidth from foreground I/O — predicts
the checkin factor is strictly smaller than the baseline one.  The
reader keeps one seed lineage across placements, so every placement
issues the identical operation sequence.

The ``locked`` placement carries ``repro.obs`` blame ledgers and asks
the attribution question directly: of the reader's worst-1% latency,
how much do the ledgers charge to checkpoint stages?  Under the gate
the storm's foreground pauses while its checkpoint runs, so the whole
checkpoint — freeze, journal readback, home-location rewrite — overlaps
live reader traffic instead of draining after the write burst.  Host-
level checkpointing then dominates the reader's tail blame, while
remap checkpoints barely register (they hold LUNs only for the rare
partial-page copy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.common.units import KIB, MIB, MS, SEC
from repro.engine.admission import AdmissionConfig, AdmissionReport
from repro.experiments.base import QUICK, ExperimentScale, paper_config
from repro.system.metrics import safe_ratio
from repro.system.config import SystemConfig, TenantSpec
from repro.system.system import run_config
from repro.telemetry.sampler import TelemetryConfig
from repro.workload.arrivals import ArrivalSpec

INTERFERENCE_MODES = ("baseline", "checkin")

PLACEMENTS = ("solo", "quiet", "shared", "locked")

READER_SEED_OFFSET = 1
"""The reader keeps this RNG offset in every placement, so all runs
issue the identical operation sequence."""


@dataclass
class InterferenceResult:
    """Reader-tail degradation per checkpointing strategy."""

    p99_read_us: Dict[Tuple[str, str], float] = field(default_factory=dict)
    """(mode, placement) -> reader p99 read latency, microseconds;
    placement is "solo", "quiet" or "shared"."""

    aggregate_qps: Dict[str, float] = field(default_factory=dict)
    """Shared-run aggregate throughput per mode."""

    storm_checkpoints: Dict[str, int] = field(default_factory=dict)
    """Checkpoints the storm tenant completed in the shared run."""

    ckpt_tail_share: Dict[str, float] = field(default_factory=dict)
    """mode -> checkpoint-attributable share of the reader's >p99 blame
    in the *locked* run (``repro.obs`` ledgers): the fraction of the
    worst reads' time spent stalled behind the storm's checkpoint
    traffic while the storm's own foreground is gated.  The degradation
    ratio says the tail got worse; this says the checkpoints are
    *why*."""

    def contention(self, mode: str) -> float:
        """Quiet/solo p99 ratio: raw write contention, no checkpoints."""
        solo = self.p99_read_us[(mode, "solo")]
        quiet = self.p99_read_us[(mode, "quiet")]
        return safe_ratio(quiet, solo, default=float("inf"))

    def degradation(self, mode: str) -> float:
        """Shared/quiet p99 ratio: tail inflation attributable to the
        storm's checkpoints alone (1.0 = checkpointing is free)."""
        quiet = self.p99_read_us[(mode, "quiet")]
        shared = self.p99_read_us[(mode, "shared")]
        return safe_ratio(shared, quiet, default=float("inf"))

    def remap_beats_host_checkpointing(self) -> bool:
        """The paper's prediction: remap degrades the co-tenant less."""
        return self.degradation("checkin") < self.degradation("baseline")

    def blame_isolates_checkpoints(self) -> bool:
        """The attribution view of the same claim: in the locked
        placement the blame ledgers charge a far larger slice of the
        reader's tail to checkpoint stages under host-level
        checkpointing than under remap."""
        return self.ckpt_tail_share.get("checkin", 0.0) \
            < self.ckpt_tail_share.get("baseline", 0.0)

    def table(self) -> str:
        """Render the experiment's rows as an ASCII table."""
        rows: List[List] = []
        for mode in INTERFERENCE_MODES:
            if (mode, "solo") not in self.p99_read_us:
                continue
            rows.append([
                mode,
                self.p99_read_us[(mode, "solo")],
                self.p99_read_us[(mode, "quiet")],
                self.p99_read_us[(mode, "shared")],
                self.p99_read_us.get((mode, "locked"), 0.0),
                self.degradation(mode),
                self.ckpt_tail_share.get(mode, 0.0),
                self.storm_checkpoints.get(mode, 0),
                self.aggregate_qps.get(mode, 0.0),
            ])
        return format_table(
            ["config", "reader_p99_solo_us", "reader_p99_quiet_us",
             "reader_p99_shared_us", "reader_p99_locked_us",
             "ckpt_degradation_x", "ckpt_tail_blame", "storm_ckpts",
             "aggregate_qps"],
            rows, title="Interference: checkpoint storm vs co-tenant reads")


def interference_config(mode: str, scale: ExperimentScale = QUICK,
                        placement: str = "shared") -> SystemConfig:
    """The two-tenant (or reader-only control) configuration.

    ``placement`` picks the reader's co-tenant: ``"solo"`` none,
    ``"quiet"`` a storm whose mid-run checkpoints are suppressed,
    ``"shared"`` the full checkpoint storm, ``"locked"`` the storm with
    the engine's checkpoint consistency gate engaged.
    """
    threads = max(2, scale.threads // 4)
    queries = scale.scaled_queries(0.25)
    storm = TenantSpec(
        name="storm",
        workload="WO",
        threads=threads,
        total_queries=queries,
        checkpoint_interval_ns=5 * MS,
        checkpoint_journal_quota=256 * KIB,
        # Generous journal: the quiet placement never rotates halves
        # mid-run, and the stormy one must differ only in its
        # checkpoint policy.
        journal_area_bytes=16 * MIB,
    )
    if placement == "quiet":
        # Same write pressure, no mid-run checkpoints: interval beyond
        # the run, quota beyond the journal.
        storm = TenantSpec(
            name="storm", workload="WO", threads=threads,
            total_queries=queries, checkpoint_interval_ns=10 * SEC,
            checkpoint_journal_quota=10 ** 12,
            journal_area_bytes=16 * MIB,
        )
    reader = TenantSpec(
        name="reader",
        workload="C",
        threads=threads,
        total_queries=queries,
        seed_offset=READER_SEED_OFFSET,
        # A read-only tenant journals nothing; the huge interval just
        # keeps its trigger from ever polling a checkpoint into being.
        checkpoint_interval_ns=10 * SEC,
        journal_area_bytes=1 * MIB,
    )
    tenants = (reader,) if placement == "solo" else (storm, reader)
    # The gated placement carries blame ledgers: the reader's tail
    # blame splits checkpoint interference from raw write contention.
    return paper_config(mode, scale, tenants=tenants,
                        journal_area_bytes=4 * MIB,
                        blame=(placement == "locked"),
                        lock_queries_during_checkpoint=(
                            placement == "locked"))


def run_interference(scale: ExperimentScale = QUICK) -> InterferenceResult:
    """Reader tails across placements under both checkpointing modes."""
    result = InterferenceResult()
    for mode in INTERFERENCE_MODES:
        for placement in PLACEMENTS:
            run = run_config(interference_config(mode, scale, placement))
            reader = run.tenant("reader")
            result.p99_read_us[(mode, placement)] = \
                reader.metrics.latency_read.p(99.0)[99.0] / 1e3
            if placement == "shared":
                result.aggregate_qps[mode] = run.metrics.throughput_qps()
                result.storm_checkpoints[mode] = \
                    len(run.tenant("storm").checkpoint_reports)
            elif placement == "locked":
                collector = dict(run.blame.tenants).get("reader")
                if collector is not None:
                    result.ckpt_tail_share[mode] = \
                        collector.tail_profile(99.0).ckpt_tail_share
    return result


# ----------------------------------------------------------------------
# Checkpoint storm under burst: the open-loop overload-survival scenario
# ----------------------------------------------------------------------

BURST_SPAN_NS = 80 * MS
"""Simulated exposure of the burst client: ~16 storm-trigger cycles."""

BURST_OVERLOAD_FACTOR = 1.5
"""The flash crowd offers this multiple of the client's calibrated solo
capacity — deliberately past sustainable, so survival (bounded queues,
typed sheds, exact reconciliation) is what's under test, not comfort."""


@dataclass
class BurstStormResult:
    """A flash-crowd client colliding with a checkpoint storm, per mode.

    The interference experiment asks "how much tail does the storm
    steal?"; this one asks the harder fleet question: when bursty
    overload and a checkpoint storm land together, does the system
    *survive* — bounded queues, typed sheds, every arrival accounted
    for — and how much load does each checkpointing mode keep serving?
    """

    client_solo_qps: float = 0.0
    """The burst client's closed-loop capacity alone on the device."""

    offered_qps: Dict[str, float] = field(default_factory=dict)
    p99_us: Dict[str, float] = field(default_factory=dict)
    """Client p99 latency measured from the arrival instant."""

    goodput_qps: Dict[str, float] = field(default_factory=dict)
    storm_checkpoints: Dict[str, int] = field(default_factory=dict)
    admission: Dict[str, AdmissionReport] = field(default_factory=dict)
    watchdog_counts: Dict[str, Dict] = field(default_factory=dict)
    """Fired overload detectors (queue-stall, journal-saturation,
    admission-overload) per mode, from the PR-5 watchdog bank."""

    def shed_rate(self, mode: str) -> float:
        return self.admission[mode].shed_rate

    def survived(self, mode: str) -> bool:
        """No zombies and no unbounded queues: the front door reconciled
        exactly and its waiting room never exceeded its bound."""
        report = self.admission[mode]
        return report.reconciles() and \
            report.max_waiting_seen <= report.max_waiting

    def overload_detected(self, mode: str) -> bool:
        """Did any PR-5 overload detector (queue-stall, admission-
        overload, journal-saturation, checkpoint-overdue) fire?"""
        counts = self.watchdog_counts.get(mode, {})
        detectors = ("queue_stall", "admission_overload",
                     "journal_saturation", "checkpoint_overdue")
        return any(counts.get(name, 0) > 0 for name in detectors)

    def checkin_keeps_more_load(self) -> bool:
        """The headline: under the identical burst, in-storage
        checkpointing serves a decisively larger share of the offered
        load.  (Shed *rates* are not compared directly: both modes
        overflow the same small waiting room at the crowd's 4x spike,
        so their ordering is occupancy-timing noise — the signal is in
        how fast admitted work drains.)"""
        return self.goodput_qps["checkin"] > self.goodput_qps["baseline"]

    def table(self) -> str:
        rows: List[List] = []
        for mode in INTERFERENCE_MODES:
            if mode not in self.admission:
                continue
            rows.append([
                mode,
                self.offered_qps[mode],
                self.goodput_qps[mode],
                self.p99_us[mode],
                self.shed_rate(mode),
                self.storm_checkpoints[mode],
                "yes" if self.survived(mode) else "NO",
            ])
        return format_table(
            ["config", "offered_qps", "goodput_qps", "client_p99_us",
             "shed_rate", "storm_ckpts", "survived"],
            rows, title="Burst storm: flash crowd vs checkpoint storm")


def burst_storm_config(mode: str, scale: ExperimentScale = QUICK,
                       offered_qps: Optional[float] = None,
                       admission: Optional[AdmissionConfig] = None
                       ) -> SystemConfig:
    """Storm writer (closed loop) + flash-crowd client (open loop).

    ``offered_qps`` None builds the client-solo calibration config
    (closed loop, no storm); a rate arms the two-tenant burst run.
    """
    threads = max(2, scale.threads // 4)
    storm = TenantSpec(
        name="storm",
        workload="WO",
        threads=threads,
        total_queries=scale.scaled_queries(0.25),
        checkpoint_interval_ns=5 * MS,
        checkpoint_journal_quota=256 * KIB,
        journal_area_bytes=16 * MIB,
    )
    if offered_qps is None:
        client = TenantSpec(
            name="client", workload="B", threads=threads,
            total_queries=scale.scaled_queries(0.25),
            seed_offset=READER_SEED_OFFSET,
            checkpoint_interval_ns=10 * SEC,
            journal_area_bytes=2 * MIB)
        tenants: Tuple[TenantSpec, ...] = (client,)
    else:
        client = TenantSpec(
            name="client", workload="B", threads=threads,
            total_queries=max(1_000,
                              int(offered_qps * BURST_SPAN_NS / SEC)),
            seed_offset=READER_SEED_OFFSET,
            checkpoint_interval_ns=10 * SEC,
            journal_area_bytes=2 * MIB,
            arrivals=ArrivalSpec(
                rate_ops_per_sec=offered_qps,
                process="bursts",
                schedule="flash-crowd",
                crowd_start_ns=20 * MS,
                crowd_duration_ns=20 * MS),
            admission=admission or AdmissionConfig(
                policy="queue", max_inflight=4 * threads,
                max_waiting=16 * threads))
        tenants = (storm, client)
    return paper_config(mode, scale, tenants=tenants,
                        journal_area_bytes=4 * MIB,
                        telemetry=TelemetryConfig(),
                        lock_queries_during_checkpoint=True)


def run_burst_storm(scale: ExperimentScale = QUICK,
                    overload_factor: float = BURST_OVERLOAD_FACTOR
                    ) -> BurstStormResult:
    """Calibrate the client's solo capacity, then storm it per mode."""
    result = BurstStormResult()
    calibration = run_config(burst_storm_config("baseline", scale))
    result.client_solo_qps = \
        calibration.tenant("client").metrics.throughput_qps()
    offered = overload_factor * result.client_solo_qps
    for mode in INTERFERENCE_MODES:
        run = run_config(burst_storm_config(mode, scale,
                                            offered_qps=offered))
        client = run.tenant("client")
        result.offered_qps[mode] = offered
        result.p99_us[mode] = \
            client.metrics.summary()["latency_p99_us"]
        result.goodput_qps[mode] = client.metrics.throughput_qps()
        result.storm_checkpoints[mode] = \
            len(run.tenant("storm").checkpoint_reports)
        result.admission[mode] = client.admission
        result.watchdog_counts[mode] = \
            dict(run.telemetry.watchdogs.counts())
    return result
