"""Multi-tenant checkpoint interference — the shared-device QoS question.

Two tenants share one SSD through NVMe-style namespaces: a *storm*
tenant that writes continuously under an aggressive checkpoint policy,
and a *reader* tenant running a read-only workload.  The experiment
measures how much the storm's *checkpoints* degrade the reader's p99
read latency, comparing host-level checkpointing (baseline: journal
travels device→host→device) against in-storage remap checkpointing
(checkin).

Raw write traffic from the storm also queues against the reader, and
the two modes sustain very different foreground write rates — so the
reader runs in three placements per mode:

* ``solo``   — reader alone on the device (uncontended floor);
* ``quiet``  — storm co-located but with mid-run checkpoints
  suppressed (write contention only);
* ``shared`` — storm co-located and checkpointing aggressively;
* ``locked`` — ``shared`` plus the engine's consistency gate
  (``lock_queries_during_checkpoint``), the RocksDB-style policy where
  the store blocks queries while its checkpoint is cut.

Checkpoint-attributable degradation is ``shared / quiet``: the same
foreground write pressure, with and without checkpoints.  The paper's
§V claim — remapping steals no bandwidth from foreground I/O — predicts
the checkin factor is strictly smaller than the baseline one.  The
reader keeps one seed lineage across placements, so every placement
issues the identical operation sequence.

The ``locked`` placement carries ``repro.obs`` blame ledgers and asks
the attribution question directly: of the reader's worst-1% latency,
how much do the ledgers charge to checkpoint stages?  Under the gate
the storm's foreground pauses while its checkpoint runs, so the whole
checkpoint — freeze, journal readback, home-location rewrite — overlaps
live reader traffic instead of draining after the write burst.  Host-
level checkpointing then dominates the reader's tail blame, while
remap checkpoints barely register (they hold LUNs only for the rare
partial-page copy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.tables import format_table
from repro.common.units import KIB, MIB, MS, SEC
from repro.experiments.base import QUICK, ExperimentScale, paper_config
from repro.system.metrics import safe_ratio
from repro.system.config import SystemConfig, TenantSpec
from repro.system.system import run_config

INTERFERENCE_MODES = ("baseline", "checkin")

PLACEMENTS = ("solo", "quiet", "shared", "locked")

READER_SEED_OFFSET = 1
"""The reader keeps this RNG offset in every placement, so all runs
issue the identical operation sequence."""


@dataclass
class InterferenceResult:
    """Reader-tail degradation per checkpointing strategy."""

    p99_read_us: Dict[Tuple[str, str], float] = field(default_factory=dict)
    """(mode, placement) -> reader p99 read latency, microseconds;
    placement is "solo", "quiet" or "shared"."""

    aggregate_qps: Dict[str, float] = field(default_factory=dict)
    """Shared-run aggregate throughput per mode."""

    storm_checkpoints: Dict[str, int] = field(default_factory=dict)
    """Checkpoints the storm tenant completed in the shared run."""

    ckpt_tail_share: Dict[str, float] = field(default_factory=dict)
    """mode -> checkpoint-attributable share of the reader's >p99 blame
    in the *locked* run (``repro.obs`` ledgers): the fraction of the
    worst reads' time spent stalled behind the storm's checkpoint
    traffic while the storm's own foreground is gated.  The degradation
    ratio says the tail got worse; this says the checkpoints are
    *why*."""

    def contention(self, mode: str) -> float:
        """Quiet/solo p99 ratio: raw write contention, no checkpoints."""
        solo = self.p99_read_us[(mode, "solo")]
        quiet = self.p99_read_us[(mode, "quiet")]
        return safe_ratio(quiet, solo, default=float("inf"))

    def degradation(self, mode: str) -> float:
        """Shared/quiet p99 ratio: tail inflation attributable to the
        storm's checkpoints alone (1.0 = checkpointing is free)."""
        quiet = self.p99_read_us[(mode, "quiet")]
        shared = self.p99_read_us[(mode, "shared")]
        return safe_ratio(shared, quiet, default=float("inf"))

    def remap_beats_host_checkpointing(self) -> bool:
        """The paper's prediction: remap degrades the co-tenant less."""
        return self.degradation("checkin") < self.degradation("baseline")

    def blame_isolates_checkpoints(self) -> bool:
        """The attribution view of the same claim: in the locked
        placement the blame ledgers charge a far larger slice of the
        reader's tail to checkpoint stages under host-level
        checkpointing than under remap."""
        return self.ckpt_tail_share.get("checkin", 0.0) \
            < self.ckpt_tail_share.get("baseline", 0.0)

    def table(self) -> str:
        """Render the experiment's rows as an ASCII table."""
        rows: List[List] = []
        for mode in INTERFERENCE_MODES:
            if (mode, "solo") not in self.p99_read_us:
                continue
            rows.append([
                mode,
                self.p99_read_us[(mode, "solo")],
                self.p99_read_us[(mode, "quiet")],
                self.p99_read_us[(mode, "shared")],
                self.p99_read_us.get((mode, "locked"), 0.0),
                self.degradation(mode),
                self.ckpt_tail_share.get(mode, 0.0),
                self.storm_checkpoints.get(mode, 0),
                self.aggregate_qps.get(mode, 0.0),
            ])
        return format_table(
            ["config", "reader_p99_solo_us", "reader_p99_quiet_us",
             "reader_p99_shared_us", "reader_p99_locked_us",
             "ckpt_degradation_x", "ckpt_tail_blame", "storm_ckpts",
             "aggregate_qps"],
            rows, title="Interference: checkpoint storm vs co-tenant reads")


def interference_config(mode: str, scale: ExperimentScale = QUICK,
                        placement: str = "shared") -> SystemConfig:
    """The two-tenant (or reader-only control) configuration.

    ``placement`` picks the reader's co-tenant: ``"solo"`` none,
    ``"quiet"`` a storm whose mid-run checkpoints are suppressed,
    ``"shared"`` the full checkpoint storm, ``"locked"`` the storm with
    the engine's checkpoint consistency gate engaged.
    """
    threads = max(2, scale.threads // 4)
    queries = scale.scaled_queries(0.25)
    storm = TenantSpec(
        name="storm",
        workload="WO",
        threads=threads,
        total_queries=queries,
        checkpoint_interval_ns=5 * MS,
        checkpoint_journal_quota=256 * KIB,
        # Generous journal: the quiet placement never rotates halves
        # mid-run, and the stormy one must differ only in its
        # checkpoint policy.
        journal_area_bytes=16 * MIB,
    )
    if placement == "quiet":
        # Same write pressure, no mid-run checkpoints: interval beyond
        # the run, quota beyond the journal.
        storm = TenantSpec(
            name="storm", workload="WO", threads=threads,
            total_queries=queries, checkpoint_interval_ns=10 * SEC,
            checkpoint_journal_quota=10 ** 12,
            journal_area_bytes=16 * MIB,
        )
    reader = TenantSpec(
        name="reader",
        workload="C",
        threads=threads,
        total_queries=queries,
        seed_offset=READER_SEED_OFFSET,
        # A read-only tenant journals nothing; the huge interval just
        # keeps its trigger from ever polling a checkpoint into being.
        checkpoint_interval_ns=10 * SEC,
        journal_area_bytes=1 * MIB,
    )
    tenants = (reader,) if placement == "solo" else (storm, reader)
    # The gated placement carries blame ledgers: the reader's tail
    # blame splits checkpoint interference from raw write contention.
    return paper_config(mode, scale, tenants=tenants,
                        journal_area_bytes=4 * MIB,
                        blame=(placement == "locked"),
                        lock_queries_during_checkpoint=(
                            placement == "locked"))


def run_interference(scale: ExperimentScale = QUICK) -> InterferenceResult:
    """Reader tails across placements under both checkpointing modes."""
    result = InterferenceResult()
    for mode in INTERFERENCE_MODES:
        for placement in PLACEMENTS:
            run = run_config(interference_config(mode, scale, placement))
            reader = run.tenant("reader")
            result.p99_read_us[(mode, placement)] = \
                reader.metrics.latency_read.p(99.0)[99.0] / 1e3
            if placement == "shared":
                result.aggregate_qps[mode] = run.metrics.throughput_qps()
                result.storm_checkpoints[mode] = \
                    len(run.tenant("storm").checkpoint_reports)
            elif placement == "locked":
                collector = dict(run.blame.tenants).get("reader")
                if collector is not None:
                    result.ckpt_tail_share[mode] = \
                        collector.tail_profile(99.0).ckpt_tail_share
    return result
