"""Checkpoint strategies: Baseline, ISC-A, ISC-B, ISC-C and Check-In.

Each strategy turns a frozen journal epoch into a durable checkpoint.
They differ exactly along the paper's configuration axis (§IV-A):

==========  ======================================================
Baseline    host reads every latest journal log back over the bus,
            rewrites it into the data area, writes metadata, trims
ISC-A       one vendor CoW command per log (device-side copy)
ISC-B       batched multi-CoW commands (device-side copy)
ISC-C       batched multi-CoW against a remap-capable sub-page FTL
Check-In    checkpoint-request commands (metadata included) against
            the remap FTL, paired with sector-aligned journaling
==========  ======================================================

Every strategy ends by deallocating the frozen journal half, which is what
lets the physical units live on under their new data-area identity after a
remap (and what generates the invalid pages after a copy).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.common.errors import CheckpointMediaError
from repro.common.units import ceil_div
from repro.engine.journal import FrozenEpoch
from repro.engine.records import JournalEntry
from repro.sim.core import Simulator, all_of
from repro.sim.process import spawn
from repro.ssd.commands import Command, CowEntry, Op, Status, write_command
from repro.ssd.ssd import Ssd


@dataclass
class CheckpointReport:
    """What one checkpoint did and how long it took."""

    strategy: str
    started_at: int
    finished_at: int = 0
    entries_total: int = 0
    """All journal entries of the epoch (including OLD ones)."""

    entries_checkpointed: int = 0
    """Latest-version entries actually materialised."""

    read_commands: int = 0
    write_commands: int = 0
    cow_commands: int = 0
    remapped_units: int = 0
    copied_units: int = 0
    journal_sectors_freed: int = 0

    @property
    def duration_ns(self) -> int:
        """Wall-clock checkpoint time (Figure 10's metric)."""
        return self.finished_at - self.started_at


@dataclass(frozen=True)
class CheckpointPolicy:
    """Host-side knobs shared by the strategies."""

    parallelism: int = 16
    """Concurrent outstanding commands during read/write/CoW phases."""

    cow_batch: int = 256
    """Descriptors per multi-CoW / checkpoint command."""

    metadata_bytes_per_entry: int = 16
    """Host metadata appended per checkpointed entry (baseline/ISC-A/B)."""

    metadata_lba: int = 0
    """Reserved metadata region (set by the engine at wiring time)."""

    media_retry_limit: int = 4
    """Fresh re-issues of a checkpoint command after a MEDIA_ERROR
    completion before the checkpoint is abandoned."""


class CheckpointStrategy(abc.ABC):
    """Interface every configuration implements."""

    def __init__(self, sim: Simulator, ssd: Ssd,
                 policy: Optional[CheckpointPolicy] = None) -> None:
        self.sim = sim
        self.ssd = ssd
        self.policy = policy if policy is not None else CheckpointPolicy()

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Configuration label (matches the paper's legend)."""

    @abc.abstractmethod
    def run(self, frozen: FrozenEpoch,
            trace_parent: Any = None) -> Generator[Any, Any, CheckpointReport]:
        """Materialise the frozen epoch into the data area.

        ``trace_parent`` is the per-checkpoint root span (or None); the
        strategy nests its named phase spans under it — the taxonomy the
        phase-breakdown tables aggregate over.
        """

    # -- shared helpers -----------------------------------------------------
    def _new_report(self, frozen: FrozenEpoch) -> CheckpointReport:
        return CheckpointReport(strategy=self.name, started_at=self.sim.now,
                                entries_total=len(frozen.jmt))

    def _phase(self, parent: Any, name: str, **attrs: Any) -> Any:
        """Open one named checkpoint-phase span (None when untraced)."""
        recorder = self.sim.flightrec
        if parent is None:
            if recorder is not None:
                recorder.record(self.sim.now, "ckpt", "phase_begin", None,
                                {"phase": name})
            return None
        span = self.sim.tracer.begin("ckpt", name, parent=parent, **attrs)
        if recorder is not None:
            recorder.record(self.sim.now, "ckpt", "phase_begin",
                            span.span_id, {"phase": name})
        return span

    def _phase_end(self, span: Any, **attrs: Any) -> None:
        """Close a phase span opened by :meth:`_phase`."""
        if span is not None:
            self.sim.tracer.end(span, **attrs)
            recorder = self.sim.flightrec
            if recorder is not None:
                recorder.record(self.sim.now, "ckpt", "phase_end",
                                span.span_id, {"phase": span.name})

    OFFLOAD_PROGRAM_SECTORS = 128
    """Size of the offload execution code image (64 KiB)."""

    def _ensure_offload_program(self,
                                trace_parent: Any = None
                                ) -> Generator[Any, Any, None]:
        """Download the offload code to the device, once (§III-C)."""
        isce = self.ssd.isce
        if isce is None or isce.program_loaded:
            return
        span = self._phase(trace_parent, "load_program",
                           bytes=self.OFFLOAD_PROGRAM_SECTORS * 512)
        yield self.ssd.submit(Command(op=Op.LOAD_PROGRAM,
                                      nsectors=self.OFFLOAD_PROGRAM_SECTORS,
                                      span=span))
        self._phase_end(span)

    def _submit_reliable(self, make_command: Any) -> Generator[Any, Any, Any]:
        """Submit via a fresh-command factory, re-issuing on media errors.

        Checkpoint commands are idempotent over a frozen epoch, so a
        whole-command retry is always safe.  Raises
        :class:`CheckpointMediaError` once the budget is exhausted or the
        device reports read-only — the engine then falls back or degrades
        instead of losing the epoch.
        """
        attempts = 0
        while True:
            completion = yield self.ssd.submit(make_command())
            if completion.ok:
                return completion
            if completion.status is Status.MEDIA_ERROR \
                    and attempts < self.policy.media_retry_limit:
                attempts += 1
                self.ssd.stats.counter("ckpt.media_resubmits").add(1)
                continue
            raise CheckpointMediaError(
                f"checkpoint {completion.command.op.value} command failed: "
                f"{completion.error or completion.status.value}")

    def _pooled(self, jobs: List[Any]) -> Generator[Any, Any, None]:
        """Run generator jobs with bounded concurrency."""
        width = max(1, self.policy.parallelism)
        queue = list(reversed(jobs))

        def worker():
            while queue:
                job = queue.pop()
                yield from job

        workers = [spawn(self.sim, worker(), name=f"ckpt-worker{i}")
                   for i in range(min(width, len(jobs)))]
        if workers:
            yield all_of(self.sim, workers)

    def _write_host_metadata(self, report: CheckpointReport,
                             entry_count: int,
                             trace_parent: Any = None
                             ) -> Generator[Any, Any, None]:
        """Baseline/ISC-A/B: the host persists checkpoint metadata itself."""
        meta_bytes = max(512, entry_count * self.policy.metadata_bytes_per_entry)
        nsectors = ceil_div(meta_bytes, 512)
        span = self._phase(trace_parent, "metadata_persist", bytes=meta_bytes)

        def meta_cmd():
            cmd = write_command(
                self.policy.metadata_lba, nsectors, tags=None, fua=True,
                stream="meta", cause="ckpt_meta")
            cmd.span = span
            return cmd

        yield from self._submit_reliable(meta_cmd)
        yield self.ssd.submit(Command(op=Op.FLUSH, span=span))
        report.write_commands += 1
        self._phase_end(span)

    def _trim_journal(self, frozen: FrozenEpoch, report: CheckpointReport,
                      via_isce: bool,
                      trace_parent: Any = None) -> Generator[Any, Any, None]:
        # The checkpoint is durable: clear the JMT first so no reader is
        # routed to a journal location while (or after) it is deallocated.
        frozen.jmt.clear()
        lba, nsectors = frozen.journal_range
        if nsectors == 0:
            return
        op = Op.DELETE_LOGS if via_isce else Op.TRIM
        span = self._phase(trace_parent, "dealloc", lba=lba, nsectors=nsectors)
        completion = yield self.ssd.submit(Command(op=op, lba=lba,
                                                   nsectors=nsectors,
                                                   span=span))
        if not completion.ok:
            # The checkpoint itself is already durable; a failed
            # deallocation only leaves stale journal sectors for GC to
            # reclaim later.  Tolerate it rather than abort.
            self.ssd.stats.counter("ckpt.trim_failed").add(1)
            self._phase_end(span, failed=True)
            return
        report.journal_sectors_freed = nsectors
        self._phase_end(span)


def cow_entry_for(entry: JournalEntry) -> CowEntry:
    """Translate a JMT entry into the device CoW descriptor."""
    if entry.log_type.value == "full" and entry.exclusive_sectors \
            and entry.src_offset == 0:
        return CowEntry(src_lba=entry.journal_lba, dst_lba=entry.target_lba,
                        nsectors=entry.target_nsectors,
                        src_nsectors=entry.journal_nsectors)
    return CowEntry(src_lba=entry.journal_lba, dst_lba=entry.target_lba,
                    nsectors=entry.target_nsectors,
                    src_nsectors=entry.journal_nsectors,
                    src_offset=entry.src_offset,
                    length_bytes=entry.stored_bytes)


class BaselineCheckpointer(CheckpointStrategy):
    """Conventional checkpointing by the storage engine (§II-B)."""

    @property
    def name(self) -> str:
        return "baseline"

    def run(self, frozen: FrozenEpoch,
            trace_parent: Any = None) -> Generator[Any, Any, CheckpointReport]:
        report = self._new_report(frozen)
        latest = frozen.jmt.latest_entries()
        report.entries_checkpointed = len(latest)

        # Phase 1: read every latest journal log into host memory.
        read_results: List[Optional[List[Any]]] = [None] * len(latest)
        readback = self._phase(trace_parent, "journal_readback",
                               entries=len(latest))

        def read_job(index: int, entry: JournalEntry):
            completion = yield from self._submit_reliable(lambda: Command(
                op=Op.READ, lba=entry.journal_lba,
                nsectors=entry.journal_nsectors, span=readback,
                cause="ckpt_read"))
            read_results[index] = completion.tags
            report.read_commands += 1

        yield from self._pooled([read_job(i, e) for i, e in enumerate(latest)])
        self._phase_end(readback)

        # Phase 2: write each latest value to its target location, in
        # ascending target order so neighbouring records coalesce into
        # whole mapping units in the device buffer.
        from repro.checkin.format import extract_from_span

        data_write = self._phase(trace_parent, "data_write",
                                 entries=len(latest))

        def write_job(index: int, entry: JournalEntry):
            tag = extract_from_span(read_results[index], entry.src_offset)
            sector_tags = [tag] * entry.target_nsectors

            def make_cmd():
                cmd = write_command(
                    entry.target_lba, entry.target_nsectors, tags=sector_tags,
                    stream="data", cause="ckpt")
                cmd.span = data_write
                return cmd

            yield from self._submit_reliable(make_cmd)
            report.write_commands += 1

        ordered = sorted(range(len(latest)), key=lambda i: latest[i].target_lba)
        yield from self._pooled([write_job(i, latest[i]) for i in ordered])
        self._phase_end(data_write)

        # Phase 3: metadata, then retire the journal half.
        yield from self._write_host_metadata(report, len(latest),
                                             trace_parent=trace_parent)
        yield from self._trim_journal(frozen, report, via_isce=False,
                                      trace_parent=trace_parent)
        report.copied_units = len(latest)
        report.finished_at = self.sim.now
        return report


class IscACheckpointer(CheckpointStrategy):
    """In-storage checkpointing, one single-CoW command per log."""

    @property
    def name(self) -> str:
        return "isc_a"

    def run(self, frozen: FrozenEpoch,
            trace_parent: Any = None) -> Generator[Any, Any, CheckpointReport]:
        report = self._new_report(frozen)
        latest = frozen.jmt.latest_entries()
        report.entries_checkpointed = len(latest)
        yield from self._ensure_offload_program(trace_parent)
        cow_span = self._phase(trace_parent, "cow_remap",
                               entries=len(latest))

        def cow_job(entry: JournalEntry):
            completion = yield from self._submit_reliable(lambda: Command(
                op=Op.COW, entries=(cow_entry_for(entry),), span=cow_span))
            report.cow_commands += 1
            report.remapped_units += completion.remapped_units
            report.copied_units += completion.copied_units

        ordered = sorted(latest, key=lambda e: e.target_lba)
        yield from self._pooled([cow_job(e) for e in ordered])
        self._phase_end(cow_span, remapped=report.remapped_units,
                        copied=report.copied_units)
        yield from self._write_host_metadata(report, len(latest),
                                             trace_parent=trace_parent)
        yield from self._trim_journal(frozen, report, via_isce=True,
                                      trace_parent=trace_parent)
        report.finished_at = self.sim.now
        return report


class IscBCheckpointer(CheckpointStrategy):
    """In-storage checkpointing with batched multi-CoW commands."""

    @property
    def name(self) -> str:
        return "isc_b"

    def run(self, frozen: FrozenEpoch,
            trace_parent: Any = None) -> Generator[Any, Any, CheckpointReport]:
        report = self._new_report(frozen)
        latest = frozen.jmt.latest_entries()
        report.entries_checkpointed = len(latest)
        yield from self._ensure_offload_program(trace_parent)
        yield from self._submit_batches(latest, report, op=Op.COW_MULTI,
                                        trace_parent=trace_parent)
        yield from self._write_host_metadata(report, len(latest),
                                             trace_parent=trace_parent)
        yield from self._trim_journal(frozen, report, via_isce=True,
                                      trace_parent=trace_parent)
        report.finished_at = self.sim.now
        return report

    def _submit_batches(self, latest: List[JournalEntry],
                        report: CheckpointReport, op: Op,
                        trace_parent: Any = None
                        ) -> Generator[Any, Any, None]:
        batch_size = max(1, self.policy.cow_batch)
        ordered = sorted(latest, key=lambda entry: entry.target_lba)
        batches = [ordered[i:i + batch_size]
                   for i in range(0, len(ordered), batch_size)]
        cow_span = self._phase(trace_parent, "cow_remap",
                               entries=len(latest), batches=len(batches))

        def batch_job(batch: List[JournalEntry]):
            entries = tuple(cow_entry_for(entry) for entry in batch)
            completion = yield from self._submit_reliable(
                lambda: Command(op=op, entries=entries, span=cow_span))
            report.cow_commands += 1
            report.remapped_units += completion.remapped_units
            report.copied_units += completion.copied_units

        yield from self._pooled([batch_job(b) for b in batches])
        self._phase_end(cow_span, remapped=report.remapped_units,
                        copied=report.copied_units)


class IscCCheckpointer(IscBCheckpointer):
    """Multi-CoW against a remap-capable sub-page FTL (no aligned logs).

    The host-side protocol is ISC-B's; the difference lives in the device
    (mapping unit = 512 B, remapping allowed) and shows up as remapped vs
    copied unit counts.
    """

    @property
    def name(self) -> str:
        return "isc_c"


class CheckInCheckpointer(IscBCheckpointer):
    """The full proposal: checkpoint-request commands + aligned journaling.

    The checkpoint command carries the metadata, so the device persists it
    and no separate host metadata write is needed (§III-C).
    """

    @property
    def name(self) -> str:
        return "checkin"

    def run(self, frozen: FrozenEpoch,
            trace_parent: Any = None) -> Generator[Any, Any, CheckpointReport]:
        report = self._new_report(frozen)
        latest = frozen.jmt.latest_entries()
        report.entries_checkpointed = len(latest)
        yield from self._ensure_offload_program(trace_parent)
        yield from self._submit_batches(latest, report, op=Op.CHECKPOINT,
                                        trace_parent=trace_parent)
        yield from self._trim_journal(frozen, report, via_isce=True,
                                      trace_parent=trace_parent)
        report.finished_at = self.sim.now
        return report


STRATEGIES = {
    "baseline": BaselineCheckpointer,
    "isc_a": IscACheckpointer,
    "isc_b": IscBCheckpointer,
    "isc_c": IscCCheckpointer,
    "checkin": CheckInCheckpointer,
}
"""Registry keyed by the configuration names used throughout the repo."""


def make_strategy(mode: str, sim: Simulator, ssd: Ssd,
                  policy: Optional[CheckpointPolicy] = None) -> CheckpointStrategy:
    """Instantiate the strategy for a configuration name."""
    try:
        cls = STRATEGIES[mode]
    except KeyError:
        raise ValueError(
            f"unknown checkpoint mode {mode!r}; "
            f"expected one of {sorted(STRATEGIES)}") from None
    return cls(sim, ssd, policy)
