"""The storage engine: query interface over KV mapping, journal, checkpoint.

This is the host half of Figure 5.  Queries enter through
:meth:`StorageEngine.get` / :meth:`put` / :meth:`read_modify_write`; the
engine translates keys to target LBAs, journals updates (write-ahead),
serves reads from its in-memory block cache or from the device, and runs
checkpoints with the configured strategy.

The configuration name (``baseline`` … ``checkin``) selects the journal
formatter *and* the checkpoint strategy together, matching the paper's
five evaluated systems.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.checkin.format import extract_from_span
from repro.common.errors import CheckpointMediaError, ConfigError, EngineError
from repro.common.units import SECTOR_SIZE, US
from repro.engine.aligner import (
    JournalFormatter,
    PackedFormatter,
    SectorAlignedFormatter,
    UpdateRequest,
)
from repro.engine.checkpointer import (
    BaselineCheckpointer,
    CheckpointPolicy,
    CheckpointReport,
    make_strategy,
)
from repro.engine.journal import JournalConfig, JournalManager
from repro.engine.kvmap import KeyValueMap
from repro.obs.blame import fold_completion
from repro.telemetry.names import safe_ratio
from repro.sim.core import Event, Simulator
from repro.ssd.commands import Command, Op
from repro.ssd.ssd import Ssd

MODES = ("baseline", "isc_a", "isc_b", "isc_c", "checkin")
"""The five evaluated configurations, in the paper's order."""


@dataclass(frozen=True)
class EngineConfig:
    """Storage-engine configuration (one of the five paper systems)."""

    mode: str = "baseline"
    journal_lba_start: int = 0
    journal_sectors: int = 32768
    meta_lba_start: int = 32768
    meta_sectors: int = 64
    data_lba_start: int = 32832
    data_sectors: int = 65536
    mapping_unit: int = 4096
    """Must match the device FTL's mapping unit."""

    group_commit_ns: int = 20 * US
    max_txn_logs: int = 256
    compress_ratio: float = 1.0
    mem_cache_records: int = 1024
    """Engine block-cache capacity, in records."""

    mem_hit_ns: int = 2_000
    """Query served entirely from engine memory."""

    cpu_query_ns: int = 1_000
    """Host CPU cost per query before any storage work."""

    ckpt_parallelism: int = 16
    cow_batch: int = 256
    lock_queries_during_checkpoint: bool = False
    verify_reads: bool = True
    """Assert that every read returns the expected key (catches
    consistency bugs in the pipeline; cheap enough to keep on)."""

    media_retry_limit: int = 4
    """Engine-level fresh-command re-issues of a failed read before the
    data is declared unreadable.  (The controller and FTL retry below
    this, so exhausting it means a genuinely uncorrectable location.)"""

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}, got {self.mode!r}")
        regions = [
            (self.journal_lba_start, self.journal_sectors, "journal"),
            (self.meta_lba_start, self.meta_sectors, "meta"),
            (self.data_lba_start, self.data_sectors, "data"),
        ]
        for start, size, name in regions:
            if start < 0 or size < 1:
                raise ConfigError(f"invalid {name} region")
        if self.media_retry_limit < 0:
            raise ConfigError("media_retry_limit must be >= 0")
        ordered = sorted(regions)
        for (s1, n1, name1), (s2, _n2, name2) in zip(ordered, ordered[1:]):
            if s1 + n1 > s2:
                raise ConfigError(f"{name1} and {name2} regions overlap")

    @property
    def uses_aligned_journaling(self) -> bool:
        """True for the full Check-In configuration."""
        return self.mode == "checkin"

    @property
    def uses_in_storage_checkpoint(self) -> bool:
        """True for every ISC-* and Check-In configuration."""
        return self.mode != "baseline"

    @property
    def device_allow_remap(self) -> bool:
        """Whether the paired device FTL should remap (ISC-C, Check-In)."""
        return self.mode in ("isc_c", "checkin")


class MemoryCache:
    """The engine's in-memory block cache (LRU over records)."""

    def __init__(self, capacity_records: int) -> None:
        if capacity_records < 0:
            raise ConfigError("cache capacity must be >= 0")
        self.capacity = capacity_records
        self._entries: "OrderedDict[int, int]" = OrderedDict()  # key -> version
        self.hits = 0
        self.misses = 0

    def lookup(self, key: int) -> Optional[int]:
        """Cached version of ``key`` or None."""
        if self.capacity == 0:
            self.misses += 1
            return None
        version = self._entries.get(key)
        if version is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return version

    def insert(self, key: int, version: int) -> None:
        """Install/refresh a record's newest version."""
        if self.capacity == 0:
            return
        self._entries[key] = version
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def hit_ratio(self) -> float:
        """Fraction of lookups served from memory."""
        return safe_ratio(self.hits, self.hits + self.misses)


class StorageEngine:
    """Host storage engine for one device."""

    def __init__(self, sim: Simulator, ssd: Ssd,
                 config: Optional[EngineConfig] = None) -> None:
        self.sim = sim
        self.ssd = ssd
        self.config = config if config is not None else EngineConfig()
        if self.config.uses_in_storage_checkpoint \
                and not ssd.supports_in_storage_checkpoint:
            raise ConfigError(
                f"mode {self.config.mode!r} needs an ISCE-enabled device")
        if ssd.ftl.config.mapping_unit != self.config.mapping_unit:
            raise ConfigError(
                f"engine mapping_unit {self.config.mapping_unit} != device "
                f"{ssd.ftl.config.mapping_unit}")

        self.formatter = self._make_formatter()
        unit_sectors = self.config.mapping_unit // SECTOR_SIZE
        data_start = self.config.data_lba_start
        if data_start % unit_sectors:
            data_start += unit_sectors - (data_start % unit_sectors)
        # Alignment is decided per record at load time: only remappable
        # (whole-unit) records need unit-aligned homes.
        self.kvmap = KeyValueMap(data_start, self.config.data_sectors,
                                 align_sectors=1)
        self.journal = JournalManager(
            sim, ssd, self.formatter,
            JournalConfig(lba_start=self.config.journal_lba_start,
                          total_sectors=self.config.journal_sectors,
                          group_commit_ns=self.config.group_commit_ns,
                          max_txn_logs=self.config.max_txn_logs,
                          # Aligned journaling places logs on mapping-unit
                          # boundaries; conventional WALs append seamlessly
                          # (the device coalescer assembles full units).
                          txn_align_sectors=(self.config.mapping_unit
                                             // SECTOR_SIZE
                                             if self.config.uses_aligned_journaling
                                             else 1)))
        self.strategy = make_strategy(
            self.config.mode, sim, ssd,
            CheckpointPolicy(parallelism=self.config.ckpt_parallelism,
                             cow_batch=self.config.cow_batch,
                             metadata_lba=self.config.meta_lba_start))
        self.mem_cache = MemoryCache(self.config.mem_cache_records)
        self.stats = ssd.stats
        # Per-query hot path: the config is frozen and counters are
        # get-or-create, so resolve both once instead of per operation.
        self._cpu_query_ns = self.config.cpu_query_ns
        self._mem_hit_ns = self.config.mem_hit_ns
        self._verify_reads = self.config.verify_reads
        self._media_retry_limit = self.config.media_retry_limit
        self._update_counter = self.stats.counter("query.update")
        self._read_mem_counter = self.stats.counter("query.read_mem")
        self._read_storage_counter = self.stats.counter("query.read_storage")

        self._gate: Optional[Event] = None  # closed during locked checkpoints
        self._checkpoint_running = False
        self.degraded = False
        """True once the engine stopped accepting updates: the journal
        could not commit (media) or a checkpoint could not complete and
        the frozen epoch is being retained for reads."""
        self.degraded_reason = ""
        self.checkpoint_reports: List[CheckpointReport] = []
        self.on_checkpoint: List[Any] = []
        """Callbacks ``f(engine, report)`` invoked after each completed
        checkpoint — the fault harness hooks its invariant checker here."""
        self.repl_log: Optional[Any] = None
        """Replication hook ``f(key, version, nbytes) -> offset`` called
        after each locally-committed update; None when the engine is not
        a replication primary (zero-overhead-when-disabled)."""
        self.repl_wait: Optional[Any] = None
        """Semi-sync hook ``f(offset) -> Optional[Event]``: when set, a
        put blocks until its replication-log offset has been acked by
        the replica (the returned event; None means already acked)."""

    def _make_formatter(self) -> JournalFormatter:
        if self.config.uses_aligned_journaling:
            return SectorAlignedFormatter(
                mapping_size=self.config.mapping_unit,
                compress_ratio=self.config.compress_ratio)
        return PackedFormatter()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the journal committer and device services."""
        self.journal.start()
        self.ssd.start()

    def shutdown(self) -> None:
        """Stop daemons so the event loop can drain."""
        self.journal.shutdown()
        self.ssd.shutdown()

    def load(self, items: Iterable[Tuple[int, int]]) -> None:
        """Instantly populate the store with ``(key, size_bytes)`` items.

        Runs at time zero with no simulated cost — the measured phase of
        every experiment starts from a warm, loaded store.
        """
        unit_sectors = self.config.mapping_unit // SECTOR_SIZE
        for key, size_bytes in items:
            stored = self.formatter.stored_size(size_bytes)
            align = (unit_sectors
                     if self.config.uses_aligned_journaling
                     and stored % self.config.mapping_unit == 0 else 1)
            record = self.kvmap.insert(key, size_bytes, stored_bytes=stored,
                                       align_override=align)
            tags = [record.tag] * record.nsectors
            self.ssd.ftl.preload(record.lba, record.nsectors, tags,
                                 stream="data")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def put(self, key: int, trace_parent: Any = None,
            blame: Any = None) -> Generator[Any, Any, Optional[int]]:
        """Update ``key``; returns the committed version.

        Returns None (without journaling) once the engine is degraded:
        an un-ackable update must not be accepted, and queueing against
        a journal that can no longer drain would deadlock the client.
        """
        tracer = self.sim.tracer
        span = tracer.begin("engine", "put", parent=trace_parent, key=key) \
            if tracer.enabled else None
        yield from self._pass_gate(blame)
        yield self._cpu_query_ns
        if self.degraded or self.journal.degraded:
            self._note_degraded(self.journal.degraded_reason)
            self.stats.counter("query.update_rejected").add(1)
            if span is not None:
                tracer.end(span, rejected=True)
            return None
        record = self.kvmap.get(key)
        version = self.kvmap.bump_version(key)
        request = UpdateRequest(key=key, version=version,
                                value_bytes=record.size_bytes,
                                target_lba=record.lba,
                                target_nsectors=record.nsectors)
        commit = self.journal.submit(request, ledger=blame)
        entry = yield commit
        if entry is None:
            # The transaction carrying this update hit the media and the
            # journal degraded; the update was never made durable and is
            # NOT acked.
            self._note_degraded(self.journal.degraded_reason)
            self.stats.counter("query.update_rejected").add(1)
            if span is not None:
                tracer.end(span, rejected=True)
            return None
        self.mem_cache.insert(key, version)
        self._update_counter.add(1, num_bytes=record.size_bytes)
        if self.repl_log is not None:
            offset = self.repl_log(key, version, record.size_bytes)
            if self.repl_wait is not None:
                ack = self.repl_wait(offset)
                if ack is not None:
                    t0 = self.sim.now if blame is not None else 0
                    yield ack
                    if blame is not None:
                        blame.charge("repl_ship", self.sim.now - t0)
        if span is not None:
            tracer.end(span, bytes=record.size_bytes)
        return version

    def apply_replicated(self, key: int, version: int,
                         trace_parent: Any = None
                         ) -> Generator[Any, Any, Optional[int]]:
        """Apply one shipped update on a replica at an explicit version.

        The replica-side twin of :meth:`put`: same gate, CPU cost and
        journal path, but the version comes from the primary's
        replication log instead of a local bump, so a promoted replica's
        reads observe exactly the versions the primary acked.  Duplicate
        deliveries (a re-shipped batch after a NACK overlaps the applied
        prefix) are recognised by version and skipped idempotently.

        Returns the applied version, or None when the update was a
        duplicate or the replica engine is degraded.
        """
        tracer = self.sim.tracer
        span = tracer.begin("engine", "apply_replicated",
                            parent=trace_parent, key=key) \
            if tracer.enabled else None
        yield from self._pass_gate()
        yield self._cpu_query_ns
        if self.degraded or self.journal.degraded:
            self._note_degraded(self.journal.degraded_reason)
            if span is not None:
                tracer.end(span, rejected=True)
            return None
        record = self.kvmap.get(key)
        if version <= record.version:
            # Already applied (re-shipped overlap) — idempotent skip.
            self.stats.counter("query.replicated_dup").add(1)
            if span is not None:
                tracer.end(span, duplicate=True)
            return None
        record.version = version
        request = UpdateRequest(key=key, version=version,
                                value_bytes=record.size_bytes,
                                target_lba=record.lba,
                                target_nsectors=record.nsectors)
        entry = yield self.journal.submit(request)
        if entry is None:
            self._note_degraded(self.journal.degraded_reason)
            if span is not None:
                tracer.end(span, rejected=True)
            return None
        self.mem_cache.insert(key, version)
        self.stats.counter("query.replicated").add(1,
                                                   num_bytes=record.size_bytes)
        if span is not None:
            tracer.end(span, bytes=record.size_bytes)
        return version

    def get(self, key: int, trace_parent: Any = None,
            blame: Any = None) -> Generator[Any, Any, int]:
        """Read ``key``; returns the version observed."""
        tracer = self.sim.tracer
        span = tracer.begin("engine", "get", parent=trace_parent, key=key) \
            if tracer.enabled else None
        yield from self._pass_gate(blame)
        yield self._cpu_query_ns
        record = self.kvmap.get(key)
        cached = self.mem_cache.lookup(key)
        if cached is not None:
            yield self._mem_hit_ns
            self._read_mem_counter.add(1)
            if span is not None:
                tracer.end(span, source="mem")
            return cached

        entry = self.journal.active_jmt.lookup(key)
        if entry is None and self.journal.frozen is not None:
            entry = self.journal.frozen.jmt.lookup(key)
        if entry is not None and entry.committed:
            completion = yield from self._read_reliable(
                entry.journal_lba, entry.journal_nsectors, span, key, blame)
            tag = extract_from_span(completion.tags, entry.src_offset)
            version = entry.version
            source = "journal"
        else:
            completion = yield from self._read_reliable(
                record.lba, record.nsectors, span, key, blame)
            tag = completion.tags[0] if completion.tags else None
            version = tag[1] if tag else 0
            source = "data"
        if self._verify_reads and tag is not None and tag[0] != key:
            raise EngineError(
                f"consistency violation: read of key {key} returned {tag}")
        self.mem_cache.insert(key, version)
        self._read_storage_counter.add(1, num_bytes=record.size_bytes)
        if span is not None:
            tracer.end(span, source=source, bytes=record.size_bytes)
        return version

    def _read_reliable(self, lba: int, nsectors: int, span: Any,
                       key: int, blame: Any = None
                       ) -> Generator[Any, Any, Any]:
        """Issue a READ, re-issuing a fresh command on MEDIA_ERROR.

        The controller and FTL already retry below this level, so an
        engine-level exhaustion means the location is genuinely
        uncorrectable — that is surfaced as a typed :class:`EngineError`
        rather than a hang or a silently-wrong version.
        """
        attempts = 0
        while True:
            command = Command(op=Op.READ, lba=lba, nsectors=nsectors)
            command.span = span
            if blame is not None:
                command.blame = {}
            t0 = self.sim.now if blame is not None else 0
            completion = yield self.ssd.submit(command)
            if blame is not None:
                fold_completion(blame, self.sim.now - t0, command.blame,
                                "ctrl_cpu" if completion.ok
                                else "media_retry")
            if completion.ok:
                return completion
            if attempts < self._media_retry_limit:
                attempts += 1
                self.stats.counter("query.read_reissues").add(1)
                continue
            self.stats.counter("query.read_failed").add(1)
            raise EngineError(
                f"uncorrectable read for key {key} at lba {lba}: "
                f"{completion.error or completion.status.value}")

    def read_modify_write(self, key: int,
                          trace_parent: Any = None,
                          blame: Any = None
                          ) -> Generator[Any, Any, Optional[int]]:
        """YCSB workload F's RMW: a read followed by an update."""
        yield from self.get(key, trace_parent=trace_parent, blame=blame)
        version = yield from self.put(key, trace_parent=trace_parent,
                                      blame=blame)
        return version

    def _note_degraded(self, reason: str) -> None:
        """Latch the degraded flag (idempotent) with a visible trail."""
        if self.degraded:
            return
        self.degraded = True
        self.degraded_reason = reason or "media errors"
        # Once the engine stops checkpointing, journal space can never be
        # reclaimed — propagate so a space-stalled committer fails fast.
        self.journal.enter_degraded(self.degraded_reason)
        self.stats.counter("engine.degraded").add(1)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.end(tracer.begin("engine", "degraded",
                                    reason=self.degraded_reason))
        recorder = self.sim.flightrec
        if recorder is not None:
            recorder.record(self.sim.now, "engine", "degraded", None,
                            {"reason": self.degraded_reason})
            recorder.trip(self.sim.now, "degraded_entry",
                          {"layer": "engine",
                           "reason": self.degraded_reason})

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    @property
    def checkpoint_running(self) -> bool:
        """True while a checkpoint is materialising."""
        return self._checkpoint_running

    def journal_pressure(self) -> int:
        """Stored bytes accumulated in the active epoch."""
        return self.journal.active_bytes_logged

    def checkpoint(self) -> Generator[Any, Any, Optional[CheckpointReport]]:
        """Run one checkpoint now; returns its report (None if skipped).

        A checkpoint that hits the media retries through the strategy's
        reliable-submit path; if an in-storage strategy still cannot
        complete, the engine falls back to a host-level (baseline)
        checkpoint of the same frozen epoch.  If that fails too, the
        frozen epoch is *retained* (reads keep resolving through its JMT
        to the intact journal) and the engine degrades instead of losing
        checkpointed state.
        """
        if self._checkpoint_running or self.degraded:
            return None
        if len(self.journal.active_jmt) == 0:
            return None
        self._checkpoint_running = True
        if self.config.lock_queries_during_checkpoint:
            self._gate = self.sim.event()
        tracer = self.sim.tracer
        root = tracer.begin("ckpt", "checkpoint",
                            strategy=self.strategy.name) \
            if tracer.enabled else None
        recorder = self.sim.flightrec
        root_id = root.span_id if root is not None else None
        if recorder is not None:
            recorder.record(self.sim.now, "ckpt", "begin", root_id,
                            {"strategy": self.strategy.name,
                             "gated":
                             self.config.lock_queries_during_checkpoint})
        try:
            scan = tracer.begin("ckpt", "journal_scan", parent=root) \
                if root is not None else None
            frozen = yield from self.journal.freeze_when_quiet()
            if scan is not None:
                tracer.end(scan, entries=len(frozen.jmt),
                           journal_sectors=frozen.used_sectors)
            report = yield from self._run_with_fallback(frozen, root)
            if report is None:
                # Unrecoverable checkpoint: keep the frozen epoch so its
                # JMT still resolves reads to the (untrimmed) journal.
                if root is not None:
                    tracer.end(root, aborted=True)
                    root = None
                if recorder is not None:
                    recorder.record(self.sim.now, "ckpt", "aborted",
                                    root_id, {"strategy":
                                              self.strategy.name})
                return None
            self.journal.release_frozen()
            self.checkpoint_reports.append(report)
            self.stats.counter("ckpt.count").add(1)
            if root is not None:
                # Per-checkpoint-interval device utilisation: the window
                # runs from the previous checkpoint (or run start).
                qd_avg, window_ns = \
                    self.ssd.controller.queue_depth.snapshot_window()
                tracer.end(root, entries=report.entries_checkpointed,
                           remapped_units=report.remapped_units,
                           copied_units=report.copied_units,
                           qd_avg=round(qd_avg, 3),
                           qd_window_ms=round(window_ns / 1e6, 3))
                root = None
            if recorder is not None:
                recorder.record(self.sim.now, "ckpt", "end", root_id,
                                {"entries": report.entries_checkpointed,
                                 "duration_ns": report.duration_ns})
            for hook in self.on_checkpoint:
                hook(self, report)
            return report
        finally:
            self._checkpoint_running = False
            if self._gate is not None:
                gate, self._gate = self._gate, None
                gate.succeed()

    def _run_with_fallback(self, frozen: Any, root: Any
                           ) -> Generator[Any, Any,
                                          Optional[CheckpointReport]]:
        """Run the configured strategy; on media abort, retry host-level.

        Returns None only when no strategy could complete — the caller
        then retains the frozen epoch and degrades the engine.
        """
        try:
            report = yield from self.strategy.run(frozen, trace_parent=root)
            return report
        except CheckpointMediaError as exc:
            self.stats.counter("ckpt.media_aborts").add(1)
            failure = exc
        if self.strategy.name != "baseline" and not self.ssd.degraded:
            fallback = BaselineCheckpointer(self.sim, self.ssd,
                                            self.strategy.policy)
            try:
                report = yield from fallback.run(frozen, trace_parent=root)
                self.stats.counter("ckpt.fallbacks").add(1)
                return report
            except CheckpointMediaError as exc:
                failure = exc
        self._note_degraded(str(failure))
        return None

    def _pass_gate(self, blame: Any = None) -> Generator[Any, Any, None]:
        if blame is None:
            while self._gate is not None and not self._gate.triggered:
                yield self._gate
            return
        t0 = self.sim.now
        while self._gate is not None and not self._gate.triggered:
            yield self._gate
        blame.charge("ckpt_freeze_stall", self.sim.now - t0)
