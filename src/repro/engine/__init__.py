"""Host storage engine: KV mapping, journaling, checkpointing, recovery."""

from repro.engine.aligner import (
    JournalFormatter,
    PackedFormatter,
    SectorAlignedFormatter,
    TransactionLayout,
    UpdateRequest,
)
from repro.engine.checkpointer import (
    STRATEGIES,
    BaselineCheckpointer,
    CheckInCheckpointer,
    CheckpointPolicy,
    CheckpointReport,
    CheckpointStrategy,
    IscACheckpointer,
    IscBCheckpointer,
    IscCCheckpointer,
    cow_entry_for,
    make_strategy,
)
from repro.engine.engine import MODES, EngineConfig, MemoryCache, StorageEngine
from repro.engine.jmt import JournalMappingTable
from repro.engine.journal import FrozenEpoch, JournalConfig, JournalManager
from repro.engine.kvmap import KeyValueMap
from repro.engine.records import JournalEntry, JournalFlag, Record, ValueTag, value_tag
from repro.engine.recovery import (
    RecoveredStore,
    RecoveryTiming,
    check_durability,
    peek_sector_tags,
    rebuild_mapping_from_oob,
    recover_store,
    timed_restart,
    verify_device_recovery,
)

__all__ = [
    "JournalFormatter",
    "PackedFormatter",
    "SectorAlignedFormatter",
    "TransactionLayout",
    "UpdateRequest",
    "STRATEGIES",
    "BaselineCheckpointer",
    "CheckInCheckpointer",
    "CheckpointPolicy",
    "CheckpointReport",
    "CheckpointStrategy",
    "IscACheckpointer",
    "IscBCheckpointer",
    "IscCCheckpointer",
    "cow_entry_for",
    "make_strategy",
    "MODES",
    "EngineConfig",
    "MemoryCache",
    "StorageEngine",
    "JournalMappingTable",
    "FrozenEpoch",
    "JournalConfig",
    "JournalManager",
    "KeyValueMap",
    "JournalEntry",
    "JournalFlag",
    "Record",
    "ValueTag",
    "value_tag",
    "RecoveredStore",
    "RecoveryTiming",
    "check_durability",
    "peek_sector_tags",
    "rebuild_mapping_from_oob",
    "recover_store",
    "timed_restart",
    "verify_device_recovery",
]
