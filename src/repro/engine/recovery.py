"""Crash recovery: device-level SPOR and engine-level replay (§III-G).

Two recovery layers, mirroring the paper:

1. **Device (SPOR)** — after sudden power-off, the SSD rebuilds its
   mapping table from the per-page OOB records (target LPN + sequence
   number written at program time) plus its durable remap/trim operation
   log.  :func:`rebuild_mapping_from_oob` performs that scan and is
   verified against the live mapping in tests.  The capacitor-backed
   staging buffer is considered durable, as the paper assumes.

2. **Engine** — the data structure is restored from the last checkpoint
   (the data area) and the journal logs written after it are replayed:
   :func:`recover_store` scans every record home and both journal halves
   and keeps each key's highest version.

Both functions are *forensic*: they inspect durable state without
consuming simulated time, the way a recovery procedure would run at boot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.checkin.format import MergedPayload, PackedSector
from repro.common.errors import RecoveryError
from repro.engine.engine import StorageEngine
from repro.ftl.ftl import Ftl


def peek_sector_tags(device: Any, lba: int, nsectors: int) -> List[Any]:
    """Durable contents of a sector range, without simulated time.

    ``device`` is an :class:`~repro.ssd.ssd.Ssd` (preferred — overlays the
    capacitor-protected write-coalescing buffer) or a bare FTL.  Reads
    staged units and programmed flash pages; unmapped sectors read None.
    """
    ftl: Ftl = device.ftl if hasattr(device, "ftl") else device
    result: List[Any] = []
    for sector in range(lba, lba + nsectors):
        lpn = ftl.lpn_of_lba(sector)
        upa = ftl.mapping.lookup(lpn)
        if upa is None:
            result.append(None)
            continue
        unit_tags = ftl._staged_tags.get(upa)
        if unit_tags is None:
            page = ftl.mapping.page_of_unit(upa)
            data = ftl.array.page_data(page)
            unit_tags = data.get(ftl.mapping.unit_index(upa)) if data else None
        offset = sector - lpn * ftl.sectors_per_unit
        result.append(unit_tags[offset] if unit_tags else None)
    if hasattr(device, "controller"):
        device.controller.durable_overlay(lba, nsectors, result)
    return result


def rebuild_mapping_from_oob(ftl: Ftl) -> Dict[int, int]:
    """Reconstruct the L2P table from OOB records + the durable op log.

    Requires the FTL to have been built with ``track_op_log=True``.
    Events (writes from the OOB scan, remaps and trims from the op log)
    are replayed in global sequence order.
    """
    if ftl.op_log is None:
        raise RecoveryError(
            "mapping reconstruction needs FtlConfig.track_op_log=True")

    events: List[Tuple[int, str, int, int]] = []
    units_per_page = ftl.units_per_page

    def collect(ppa: int, oob: Any) -> None:
        if not oob:
            return
        for unit_index, unit_oob in enumerate(oob):
            if not unit_oob:
                continue
            upa = ppa * units_per_page + unit_index
            for lpn, seq in unit_oob:
                events.append((seq, "write", lpn, upa))

    for ppa, oob in ftl.array.scan_oob():
        collect(ppa, oob)
    # Staged units survive power loss behind the capacitor.
    for upa, unit_oob in ftl._staged_oob.items():
        if not unit_oob:
            continue
        for lpn, seq in unit_oob:
            events.append((seq, "write", lpn, upa))

    events.extend(ftl.op_log)
    events.sort(key=lambda event: event[0])

    mapping: Dict[int, int] = {}
    for _seq, op, a, b in events:
        if op == "write":
            mapping[a] = b
        elif op == "remap":
            if a in mapping:
                mapping[b] = mapping[a]
        elif op == "trim":
            mapping.pop(a, None)
        else:  # pragma: no cover - closed set
            raise RecoveryError(f"unknown durable op {op!r}")
    return mapping


def verify_device_recovery(ftl: Ftl) -> None:
    """Assert the OOB/op-log scan reproduces the live mapping exactly."""
    rebuilt = rebuild_mapping_from_oob(ftl)
    live = ftl.mapping.snapshot()
    if rebuilt != live:
        missing = {k: v for k, v in live.items() if rebuilt.get(k) != v}
        extra = {k: v for k, v in rebuilt.items() if live.get(k) != v}
        raise RecoveryError(
            f"SPOR mapping mismatch: {len(missing)} wrong/missing, "
            f"{len(extra)} spurious (examples: {list(missing.items())[:3]} "
            f"vs {list(extra.items())[:3]})")


def _tags_in_payload(sector_tag: Any) -> List[Any]:
    if sector_tag is None:
        return []
    if isinstance(sector_tag, (MergedPayload, PackedSector)):
        return [tag for tag in sector_tag.parts.values() if tag is not None]
    return [sector_tag]


@dataclass
class RecoveredStore:
    """The engine state reconstructed from durable storage."""

    versions: Dict[int, int] = field(default_factory=dict)
    from_checkpoint: Dict[int, int] = field(default_factory=dict)
    replayed_from_journal: Dict[int, int] = field(default_factory=dict)

    def version_of(self, key: int) -> int:
        """Recovered version of ``key`` (0 = only the loaded value)."""
        return self.versions.get(key, 0)


def recover_store(engine: StorageEngine) -> RecoveredStore:
    """Engine-level recovery: last checkpoint + journal replay.

    Scans every record's data-area home (the checkpointed state) and both
    journal halves (logs since the last checkpoints), keeping the highest
    version seen per key — the standard replay the paper's §III-G invokes.
    """
    device = engine.ssd
    recovered = RecoveredStore()

    for record in engine.kvmap.records():
        tags = peek_sector_tags(device, record.lba, record.nsectors)
        for tag in _tags_in_payload(tags[0] if tags else None):
            key, version = tag
            if key != record.key:
                raise RecoveryError(
                    f"data area corruption: record {record.key} home holds "
                    f"{tag}")
            recovered.from_checkpoint[key] = max(
                recovered.from_checkpoint.get(key, 0), version)

    journal_cfg = engine.journal.config
    journal_tags = peek_sector_tags(device, journal_cfg.lba_start,
                                    journal_cfg.total_sectors)
    for sector_tag in journal_tags:
        for tag in _tags_in_payload(sector_tag):
            if not isinstance(tag, tuple) or len(tag) != 2:
                continue
            key, version = tag
            recovered.replayed_from_journal[key] = max(
                recovered.replayed_from_journal.get(key, 0), version)

    keys = set(recovered.from_checkpoint) | set(recovered.replayed_from_journal)
    for key in keys:
        recovered.versions[key] = max(
            recovered.from_checkpoint.get(key, 0),
            recovered.replayed_from_journal.get(key, 0))
    return recovered


@dataclass
class RecoveryTiming:
    """Result of a timed restart (§III-G)."""

    duration_ns: int
    journal_sectors_read: int
    read_commands: int


def timed_restart(engine: StorageEngine,
                  device_preread: bool) -> "Generator[Any, Any, RecoveryTiming]":
    """Replay the journal after a restart, with simulated timing.

    ``device_preread=True`` models the Check-In SSD's recovery assist: the
    journal region is pre-read into the device buffer with large
    sequential commands, so the engine's replay is served from DRAM.
    ``False`` models a conventional engine reading each journal chunk with
    small individual commands.

    Returns the simulated restart duration — the basis of the paper's
    claim that pre-reading "can reduce the recovery time".
    """
    from repro.ssd.commands import Command, Op

    sim = engine.sim
    started = sim.now
    ftl = engine.ssd.ftl
    journal_cfg = engine.journal.config

    # Which journal sectors are durably mapped (committed logs)?
    mapped_runs = []
    run_start = None
    for sector in range(journal_cfg.lba_start,
                        journal_cfg.lba_start + journal_cfg.total_sectors):
        mapped = ftl.mapping.is_mapped(ftl.lpn_of_lba(sector))
        if mapped and run_start is None:
            run_start = sector
        elif not mapped and run_start is not None:
            mapped_runs.append((run_start, sector - run_start))
            run_start = None
    if run_start is not None:
        mapped_runs.append((run_start, journal_cfg.lba_start +
                            journal_cfg.total_sectors - run_start))

    chunk = 256 if device_preread else 8
    commands = 0
    sectors_read = 0
    from repro.sim.core import all_of
    from repro.sim.process import spawn

    def read_chunk(lba: int, nsectors: int):
        yield engine.ssd.submit(Command(op=Op.READ, lba=lba,
                                        nsectors=nsectors))

    pending = []
    for start, length in mapped_runs:
        offset = 0
        while offset < length:
            nsectors = min(chunk, length - offset)
            pending.append(read_chunk(start + offset, nsectors))
            commands += 1
            sectors_read += nsectors
            offset += nsectors

    width = 32 if device_preread else 4
    queue = list(reversed(pending))

    def worker():
        while queue:
            job = queue.pop()
            yield from job

    workers = [spawn(sim, worker(), name=f"recovery{i}")
               for i in range(min(width, len(pending)) or 1)]
    if pending:
        yield all_of(sim, workers)
    return RecoveryTiming(duration_ns=sim.now - started,
                          journal_sectors_read=sectors_read,
                          read_commands=commands)


def check_durability(engine: StorageEngine,
                     acknowledged: Dict[int, int],
                     current_versions: Optional[Dict[int, int]] = None
                     ) -> RecoveredStore:
    """Assert no acknowledged update is lost and nothing is invented.

    ``acknowledged`` maps key → highest version whose commit was acked to
    a client before the crash.  Recovery must return at least that
    version for every key, and never more than the key's true current
    version.
    """
    recovered = recover_store(engine)
    for key, acked_version in acknowledged.items():
        got = recovered.version_of(key)
        if got < acked_version:
            raise RecoveryError(
                f"durability violation: key {key} acked v{acked_version}, "
                f"recovered v{got}")
    limit = current_versions or {
        record.key: record.version for record in engine.kvmap.records()}
    for key, version in recovered.versions.items():
        if version > limit.get(key, 0):
            raise RecoveryError(
                f"recovery invented data: key {key} recovered v{version}, "
                f"never written past v{limit.get(key, 0)}")
    return recovered
