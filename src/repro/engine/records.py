"""Host-side record and journal-entry types.

A *record* is one key's fixed home in the data area; a *journal entry* is
one update's log in the journal area plus the JMT bookkeeping (the NEW/OLD
flag of Algorithm 1).  The value *tag* — the opaque payload tracked end to
end through the device — is the ``(key, version)`` pair.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.checkin.format import LogType
from repro.common.errors import EngineError

ValueTag = Tuple[int, int]
"""``(key, version)`` — what a stored value 'contains' in the simulation."""


def value_tag(key: int, version: int) -> ValueTag:
    """The payload tag for one version of one key."""
    return (key, version)


@dataclass
class Record:
    """One key's allocation in the data area."""

    key: int
    size_bytes: int
    lba: int
    nsectors: int
    version: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 1:
            raise EngineError(f"record size must be >= 1, got {self.size_bytes}")
        if self.nsectors < 1:
            # The home may be smaller than the raw value when the engine
            # compresses (stored footprint sizing), but never empty.
            raise EngineError("record needs at least one sector")

    @property
    def tag(self) -> ValueTag:
        """Tag of the record's current version."""
        return (self.key, self.version)


class JournalFlag(enum.Enum):
    """Entry state in the JMT (Algorithm 1 skips OLD entries)."""

    NEW = "new"
    OLD = "old"


@dataclass
class JournalEntry:
    """One journaled update: where its log lives and where it must land."""

    key: int
    version: int
    target_lba: int
    target_nsectors: int
    value_bytes: int
    """Original (pre-formatting) value size."""

    stored_bytes: int
    """Bytes the log occupies after alignment/packing/compression."""

    journal_lba: int
    """First journal sector holding this log."""

    journal_nsectors: int
    """Journal sectors the log touches (shared sectors count once each)."""

    src_offset: int = 0
    """Byte offset of the value within its first journal sector (packed
    logs) or within its merged mapping unit (aligned logs)."""

    log_type: LogType = LogType.FULL
    flag: JournalFlag = JournalFlag.NEW
    committed: bool = False
    exclusive_sectors: bool = True
    """True when the log owns every sector it touches (no packing/merge
    neighbours) — a necessary condition for remapping."""

    def __post_init__(self) -> None:
        if self.journal_nsectors < 1:
            raise EngineError("journal entry must span at least one sector")
        if self.src_offset < 0:
            raise EngineError(f"negative src_offset {self.src_offset}")

    @property
    def tag(self) -> ValueTag:
        """The payload tag this entry journals."""
        return (self.key, self.version)

    @property
    def is_latest(self) -> bool:
        """True while no later update superseded this entry."""
        return self.flag is JournalFlag.NEW
