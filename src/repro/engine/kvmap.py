"""Key→LBA mapping layer of the storage engine.

The engine's key-value mapping layer (Figure 5) owns the data area: each
key gets a fixed, sector-aligned home sized to its *stored* value size.
In the example of §II-B this is the translation that turns
``PUT(key, value)`` into ``PUT(target LBA, value)``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.common.errors import EngineError, KeyNotFoundError
from repro.common.units import SECTOR_SIZE, ceil_div
from repro.engine.records import Record


class KeyValueMap:
    """Sequential data-area allocator and key directory."""

    def __init__(self, data_lba_start: int, data_sectors: int,
                 align_sectors: int = 1) -> None:
        """``align_sectors`` forces every record onto a mapping-unit
        boundary (Check-In sizes it to the FTL unit so checkpointed logs
        can be remapped onto record homes); conventional engines pack at
        sector granularity (align 1), which is exactly the misalignment
        the paper blames for read-modify-write amplification."""
        if data_lba_start < 0 or data_sectors < 1:
            raise EngineError("invalid data region")
        if align_sectors < 1:
            raise EngineError("align_sectors must be >= 1")
        if data_lba_start % align_sectors:
            raise EngineError("data region start must honour the alignment")
        self.data_lba_start = data_lba_start
        self.data_sectors = data_sectors
        self.align_sectors = align_sectors
        self._records: Dict[int, Record] = {}
        self._next_lba = data_lba_start

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: int) -> bool:
        return key in self._records

    def get(self, key: int) -> Record:
        """The record for ``key``; raises KeyNotFoundError when absent."""
        record = self._records.get(key)
        if record is None:
            raise KeyNotFoundError(f"key {key} was never inserted")
        return record

    def records(self) -> Iterator[Record]:
        """All records in insertion order."""
        return iter(self._records.values())

    @property
    def used_sectors(self) -> int:
        """Sectors allocated so far."""
        return self._next_lba - self.data_lba_start

    @property
    def free_sectors(self) -> int:
        """Sectors still available in the data region."""
        return self.data_sectors - self.used_sectors

    # -- mutations ----------------------------------------------------------
    def insert(self, key: int, size_bytes: int,
               stored_bytes: Optional[int] = None,
               align_override: Optional[int] = None) -> Record:
        """Allocate a home for a new key.

        ``stored_bytes`` is the on-device footprint when the engine formats
        values (compression/alignment); defaults to the raw size.
        ``align_override`` replaces the map's default alignment for this
        record — Check-In only unit-aligns records whose formatted size is
        a whole number of units (the remap candidates); sub-unit records
        pack at sector granularity and take the copy path anyway.
        """
        if key in self._records:
            raise EngineError(f"key {key} already exists")
        align = align_override if align_override is not None \
            else self.align_sectors
        if align < 1:
            raise EngineError("alignment must be >= 1")
        footprint = stored_bytes if stored_bytes is not None else size_bytes
        nsectors = ceil_div(max(footprint, 1), SECTOR_SIZE)
        if nsectors % align:
            nsectors += align - (nsectors % align)
        lba = self._next_lba
        if lba % align:
            lba += align - (lba % align)
        if lba + nsectors > self.data_lba_start + self.data_sectors:
            raise EngineError(
                f"data region full: need {nsectors} sectors at {lba}, "
                f"region ends at {self.data_lba_start + self.data_sectors}")
        record = Record(key=key, size_bytes=size_bytes, lba=lba,
                        nsectors=nsectors)
        self._next_lba = lba + nsectors
        self._records[key] = record
        return record

    def bump_version(self, key: int) -> int:
        """Advance ``key``'s version for a new update; returns it."""
        record = self.get(key)
        record.version += 1
        return record.version
