"""Front-door admission control: typed accept / queue / shed decisions.

Open-loop traffic (``workload/arrivals.py``) does not self-throttle, so
past the saturation point *something* must absorb the excess.  Without a
front door that something is an unbounded queue — latency grows without
limit and no run ever finishes.  The :class:`AdmissionController` sits
in front of a tenant's engine and turns overload into explicit, typed
outcomes:

* ``queue``   — hold excess arrivals in a bounded waiting room; shed
  only when the waiting room itself overflows.
* ``shed``    — no waiting room: reject immediately when all in-flight
  slots are busy (classic load shedding).
* ``degrade`` — reads may wait, writes are shed while the system is
  saturated (degrade-to-read-only).

Every submitted operation gets exactly one typed completion — accepted
and executed, or shed with a machine-readable reason.  The controller
reconciles exactly: ``submitted == completed + shed_total`` once the
waiting room drains (asserted by the overload battery in
``tests/test_overload.py``).

Deliberately *not* wired into :class:`~repro.obs.stats.StatRegistry`:
plain-int counters keep engine counter snapshots byte-identical when
admission is off, preserving the zero-overhead-when-disabled guarantee.
Time spent waiting at the front door is charged to the ``admission``
blame stage by the client layer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.common.errors import ConfigError
from repro.sim.core import Event, Simulator

POLICIES = ("queue", "shed", "degrade")

# Typed admission outcomes.  Shed reasons say *why* an op was refused,
# so tests and telemetry can reconcile per-cause rather than per-bucket.
ACCEPT = "accept"
QUEUED = "queued"
SHED_QUEUE_FULL = "shed_queue_full"
SHED_WAITING_ROOM_FULL = "shed_waiting_room_full"
SHED_WRITE_DEGRADED = "shed_write_degraded"

SHED_REASONS = (SHED_QUEUE_FULL, SHED_WAITING_ROOM_FULL,
                SHED_WRITE_DEGRADED)


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-tenant front-door limits and policy (frozen, hashable)."""

    policy: str = "queue"
    """``queue``, ``shed`` or ``degrade`` (degrade-to-read-only)."""

    max_inflight: int = 64
    """Operations allowed past the front door concurrently."""

    max_waiting: int = 256
    """Bounded waiting-room depth (``queue``/``degrade`` policies)."""

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigError(f"admission policy must be one of "
                              f"{POLICIES}, got {self.policy!r}")
        if self.max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        if self.max_waiting < 0:
            raise ConfigError("max_waiting must be >= 0")


@dataclass
class AdmissionTicket:
    """One typed admission decision for one submitted operation."""

    outcome: str
    event: Optional[Event] = None
    """Set only for ``queued`` tickets: fires when a slot frees up."""

    @property
    def accepted(self) -> bool:
        return self.outcome == ACCEPT

    @property
    def queued(self) -> bool:
        return self.outcome == QUEUED

    @property
    def shed(self) -> bool:
        return self.outcome in SHED_REASONS


@dataclass
class AdmissionReport:
    """End-of-run reconciliation snapshot for one tenant's front door."""

    tenant: str
    policy: str
    submitted: int
    accepted: int
    completed: int
    shed: Dict[str, int] = field(default_factory=dict)
    max_inflight: int = 0
    max_waiting: int = 0
    max_inflight_seen: int = 0
    max_waiting_seen: int = 0

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def shed_rate(self) -> float:
        return self.shed_total / self.submitted if self.submitted else 0.0

    def reconciles(self) -> bool:
        """Every submitted op got exactly one typed completion."""
        return self.submitted == self.completed + self.shed_total


class AdmissionController:
    """Bounded front door for one tenant's engine.

    The client layer calls :meth:`try_admit` before touching the engine
    and :meth:`release` after the operation completes (or is abandoned).
    A freed slot is handed directly to the oldest waiter — FIFO, no
    thundering herd — so ``inflight`` never exceeds ``max_inflight``.
    """

    def __init__(self, sim: Simulator, config: AdmissionConfig,
                 label: str = "") -> None:
        self.sim = sim
        self.config = config
        self.label = label
        self.inflight = 0
        self._waiting: Deque[Event] = deque()
        # Plain ints, not StatRegistry counters: see module docstring.
        self.submitted = 0
        self.accepted = 0
        self.completed = 0
        self.shed: Dict[str, int] = {reason: 0 for reason in SHED_REASONS}
        self.max_inflight_seen = 0
        self.max_waiting_seen = 0

    @property
    def waiting(self) -> int:
        return len(self._waiting)

    def try_admit(self, is_read: bool) -> AdmissionTicket:
        """Decide one arrival's fate: accept, queue, or shed (typed)."""
        self.submitted += 1
        if self.inflight < self.config.max_inflight:
            self.inflight += 1
            self.accepted += 1
            self.max_inflight_seen = max(self.max_inflight_seen,
                                         self.inflight)
            return AdmissionTicket(ACCEPT)
        policy = self.config.policy
        may_wait = policy == "queue" or (policy == "degrade" and is_read)
        if may_wait and len(self._waiting) < self.config.max_waiting:
            slot = self.sim.event()
            self._waiting.append(slot)
            self.accepted += 1
            self.max_waiting_seen = max(self.max_waiting_seen,
                                        len(self._waiting))
            return AdmissionTicket(QUEUED, event=slot)
        if policy == "shed":
            reason = SHED_QUEUE_FULL
        elif policy == "degrade" and not is_read:
            reason = SHED_WRITE_DEGRADED
        else:
            reason = SHED_WAITING_ROOM_FULL
        self.shed[reason] += 1
        recorder = self.sim.flightrec
        if recorder is not None:
            recorder.record(self.sim.now, "admission", "shed", None,
                            {"tenant": self.label, "reason": reason,
                             "is_read": is_read,
                             "inflight": self.inflight,
                             "waiting": len(self._waiting)})
        return AdmissionTicket(reason)

    def release(self) -> None:
        """Return a slot; hand it straight to the oldest waiter if any."""
        self.completed += 1
        if self._waiting:
            # Slot transfers to the waiter: inflight stays unchanged.
            self._waiting.popleft().succeed()
        else:
            self.inflight -= 1
            if self.inflight < 0:
                raise ConfigError(
                    f"admission release without matching admit "
                    f"(tenant {self.label!r})")

    def report(self, tenant: str = "") -> AdmissionReport:
        return AdmissionReport(
            tenant=tenant or self.label,
            policy=self.config.policy,
            submitted=self.submitted,
            accepted=self.accepted,
            completed=self.completed,
            shed=dict(self.shed),
            max_inflight=self.config.max_inflight,
            max_waiting=self.config.max_waiting,
            max_inflight_seen=self.max_inflight_seen,
            max_waiting_seen=self.max_waiting_seen,
        )
