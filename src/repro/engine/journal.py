"""Journal manager: group commit, journal-area halves, freeze/release.

Updates are buffered briefly (group commit) and written to the journal
area as one sector-aligned block write per transaction — "journal
synchronization" (§II-A).  The journal area is split into two halves so a
checkpoint can work on a *frozen* half (and its JMT) while new updates
keep journaling into the other half without blocking, exactly as the case
study describes ("new journal area and JMT are already built as an
alternative").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.common.errors import EngineError
from repro.common.units import SECTOR_SIZE, US
from repro.engine.aligner import JournalFormatter, UpdateRequest
from repro.engine.jmt import JournalMappingTable
from repro.obs.blame import RequestLedger, fold_completion
from repro.sim.core import Event, Simulator
from repro.sim.process import Interrupt, spawn
from repro.ssd.commands import Status, write_command
from repro.ssd.ssd import Ssd


@dataclass(frozen=True)
class JournalConfig:
    """Journal area geometry and commit policy."""

    lba_start: int = 0
    total_sectors: int = 32768
    """Whole journal area (split into two halves)."""

    group_commit_ns: int = 20 * US
    """Gathering window before a transaction is written."""

    max_txn_logs: int = 256
    """Upper bound on logs batched into one transaction."""

    txn_align_sectors: int = 1
    """Transactions start on this sector boundary.  Real write-ahead logs
    append in whole log blocks, so the journal stream itself does not
    read-modify-write against the FTL mapping unit — only the checkpoint's
    scattered small writes do."""

    media_retry_limit: int = 4
    """Fresh-command re-submissions of a journal transaction after the
    device reports a media error, before the engine degrades."""

    def __post_init__(self) -> None:
        if self.total_sectors < 4 or self.total_sectors % 2:
            raise EngineError("journal area needs an even sector count >= 4")
        if self.group_commit_ns < 0:
            raise EngineError("group_commit_ns must be >= 0")
        if self.max_txn_logs < 1:
            raise EngineError("max_txn_logs must be >= 1")
        if self.txn_align_sectors < 1:
            raise EngineError("txn_align_sectors must be >= 1")
        if self.media_retry_limit < 0:
            raise EngineError("media_retry_limit must be >= 0")

    @property
    def half_sectors(self) -> int:
        """Capacity of each journal half."""
        return self.total_sectors // 2


@dataclass
class FrozenEpoch:
    """A journal half plus its JMT, handed to the checkpointer."""

    jmt: JournalMappingTable
    lba_start: int
    used_sectors: int

    @property
    def journal_range(self) -> Tuple[int, int]:
        """``(lba, nsectors)`` to deallocate once the checkpoint is durable."""
        return (self.lba_start, self.used_sectors)


class _Half:
    """Sequential allocation state of one journal half."""

    def __init__(self, lba_start: int, sectors: int) -> None:
        self.lba_start = lba_start
        self.sectors = sectors
        self.head = 0

    def allocate(self, nsectors: int, align: int = 1) -> Optional[int]:
        start = self.head
        if start % align:
            start += align - (start % align)
        if start + nsectors > self.sectors:
            return None
        self.head = start + nsectors
        return self.lba_start + start

    def reset(self) -> None:
        self.head = 0


class JournalManager:
    """Buffers updates, writes transactions, maintains the active JMT."""

    def __init__(self, sim: Simulator, ssd: Ssd, formatter: JournalFormatter,
                 config: Optional[JournalConfig] = None) -> None:
        self.sim = sim
        self.ssd = ssd
        self.formatter = formatter
        self.config = config if config is not None else JournalConfig()
        half = self.config.half_sectors
        self._halves = [_Half(self.config.lba_start, half),
                        _Half(self.config.lba_start + half, half)]
        self._active_index = 0
        self._epoch = 0
        self.active_jmt = JournalMappingTable(epoch=0)
        self.frozen: Optional[FrozenEpoch] = None
        self._pending: List[Tuple[UpdateRequest, Event, int,
                                  Optional[RequestLedger]]] = []
        self._arrival: Optional[Event] = None
        self._space_freed: Optional[Event] = None
        self._committer = None
        self._inflight_txns = 0
        self._rotating = False
        self._quiesced: Optional[Event] = None
        self._rotation_done: Optional[Event] = None
        self.degraded = False
        """True once a journal transaction could not be made durable
        (media-retry budget exhausted or the device went read-only)."""
        self.degraded_reason = ""
        self.stats = ssd.stats
        # Per-transaction hot path: get-or-create counters resolved once
        # at construction (the config scalars are cached by the ``config``
        # setter, which also covers tests swapping the config afterwards).
        self._txn_counter = self.stats.counter("journal.transactions")
        self._payload_counter = self.stats.counter("journal.payload")
        self._padding_counter = self.stats.counter("journal.padding")

    @property
    def config(self) -> JournalConfig:
        """The journal configuration (replaceable; scalars re-cached)."""
        return self._config

    @config.setter
    def config(self, value: JournalConfig) -> None:
        self._config = value
        self._group_commit_ns = value.group_commit_ns
        self._max_txn_logs = value.max_txn_logs
        self._txn_align_sectors = value.txn_align_sectors

    # ------------------------------------------------------------------
    # submission API (called from query processes)
    # ------------------------------------------------------------------
    def submit(self, request: UpdateRequest,
               ledger: Optional[RequestLedger] = None) -> Event:
        """Queue an update for journaling; event fires when committed.

        ``ledger`` opts the update into blame attribution: time from now
        until its batch is picked is ``journal_queue``; rotation and
        journal-full stalls and the device write itself are charged as
        the committer measures them.
        """
        commit_event = self.sim.event()
        self._pending.append((request, commit_event, self.sim.now, ledger))
        if self._arrival is not None and not self._arrival.triggered:
            self._arrival.succeed()
        return commit_event

    @property
    def pending_count(self) -> int:
        """Updates waiting for the next transaction."""
        return len(self._pending)

    @property
    def active_bytes_logged(self) -> int:
        """Stored journal bytes in the active epoch (checkpoint trigger)."""
        return self.active_jmt.bytes_logged

    @property
    def active_head_sectors(self) -> int:
        """Sectors consumed in the active half."""
        return self._halves[self._active_index].head

    # ------------------------------------------------------------------
    # committer daemon
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the group-commit daemon."""
        if self._committer is None:
            self._committer = spawn(self.sim, self._commit_loop(),
                                    name="journal-committer")

    def shutdown(self) -> None:
        """Stop the daemon (end of run)."""
        if self._committer is not None and self._committer.alive:
            self._committer.interrupt("shutdown")
        self._committer = None

    def _commit_loop(self) -> Generator[Any, Any, None]:
        try:
            while True:
                if not self._pending:
                    self._arrival = self.sim.event()
                    yield self._arrival
                if self._group_commit_ns:
                    yield self._group_commit_ns
                while self._pending:
                    batch = self._pending[:self._max_txn_logs]
                    del self._pending[:len(batch)]
                    yield from self._commit_transaction(batch)
        except Interrupt:
            return

    def _commit_transaction(
            self, batch: List[Tuple[UpdateRequest, Event, int,
                                    Optional[RequestLedger]]]
            ) -> Generator[Any, Any, None]:
        t_pick = self.sim.now
        ledgers = [ledger for _r, _e, _t, ledger in batch if ledger is not None]
        if ledgers:
            # Every batch member queued from its own submit time until
            # this pick (group-commit gathering + committer backlog).
            for _request, _event, submitted, ledger in batch:
                if ledger is not None:
                    ledger.charge("journal_queue", t_pick - submitted)
        requests = [request for request, _event, _ts, _ledger in batch]
        layout = self.formatter.layout(requests, first_lba=0)
        nsectors = layout.nsectors
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant("aligner", "layout", logs=len(batch),
                           nsectors=nsectors,
                           payload_bytes=layout.payload_bytes,
                           padded_bytes=layout.padded_bytes)
        if nsectors > self.config.half_sectors:
            raise EngineError(
                f"transaction of {nsectors} sectors exceeds a journal half")

        # Allocation must not overlap a half rotation: a transaction that
        # allocated in a half about to be frozen under an already-captured
        # JMT would have its sectors trimmed away.  From the moment the
        # allocation succeeds until the JMT entries are in place, the
        # transaction is 'in flight' and blocks freezes.
        align = self._txn_align_sectors
        lba = None
        while lba is None:
            if self.degraded:
                # No space will ever be freed again (checkpoints stopped);
                # fail the batch instead of parking its waiters forever.
                self.stats.counter("journal.failed_txns").add(1)
                for _request, event, _ts, _ledger in batch:
                    event.succeed(None)
                return
            while self._rotating:
                self._rotation_done = self.sim.event()
                t0 = self.sim.now if ledgers else 0
                yield self._rotation_done
                if ledgers:
                    # Held at the door while the checkpoint rotates halves.
                    for ledger in ledgers:
                        ledger.charge("ckpt_freeze_stall", self.sim.now - t0)
            lba = self._halves[self._active_index].allocate(nsectors, align)
            if lba is None:
                # Journal half full: wait for a checkpoint to rotate halves.
                self.stats.counter("journal.full_stalls").add(1)
                self._space_freed = self.sim.event()
                t0 = self.sim.now if ledgers else 0
                yield self._space_freed
                if ledgers:
                    for ledger in ledgers:
                        ledger.charge("journal_full_stall", self.sim.now - t0)
        self._inflight_txns += 1
        try:
            yield from self._write_and_commit(batch, layout, lba, nsectors)
        finally:
            self._inflight_txns -= 1
            if self._inflight_txns == 0 and self._quiesced is not None \
                    and not self._quiesced.triggered:
                self._quiesced.succeed()

    def _write_and_commit(
            self, batch: List[Tuple[UpdateRequest, Event, int,
                                    Optional[RequestLedger]]],
            layout, lba: int,
            nsectors: int) -> Generator[Any, Any, None]:
        for entry in layout.entries:
            entry.journal_lba += lba
        ledgers = [ledger for _r, _e, _t, ledger in batch if ledger is not None]
        tracer = self.sim.tracer
        span = tracer.begin("journal", "txn", lba=lba, nsectors=nsectors,
                            logs=len(batch),
                            bytes=nsectors * SECTOR_SIZE) \
            if tracer.enabled else None
        # The controller already retries internally; on a MEDIA_ERROR
        # completion we re-issue the whole transaction as a fresh command
        # a bounded number of times before giving up.  A failed
        # transaction never acks its waiters with a committed entry:
        # every commit event resolves to None and the journal degrades.
        attempts = 0
        while True:
            command = write_command(
                lba, nsectors, tags=layout.sector_tags, fua=True,
                stream="journal", cause="journal")
            command.span = span
            if ledgers:
                command.blame = {}
            t0 = self.sim.now if ledgers else 0
            completion = yield self.ssd.submit(command)
            if ledgers:
                # Every batch member waited this same absolute window;
                # the device breakdown folds into each ledger, leaving
                # the host-side residual to journal_commit (media_retry
                # when the attempt failed).
                window = self.sim.now - t0
                residual = ("journal_commit" if completion.ok
                            else "media_retry")
                for ledger in ledgers:
                    fold_completion(ledger, window, command.blame, residual)
            if completion.ok:
                break
            if completion.status is Status.MEDIA_ERROR \
                    and attempts < self.config.media_retry_limit:
                attempts += 1
                self.stats.counter("journal.media_resubmits").add(1)
                continue
            # READ_ONLY device or retry budget exhausted: fail the batch.
            if span is not None:
                tracer.end(span)
            self.enter_degraded(completion.error or completion.status.value)
            self.stats.counter("journal.failed_txns").add(1)
            for _request, event, _ts, _ledger in batch:
                event.succeed(None)
            return
        if span is not None:
            tracer.end(span)

        self._txn_counter.add(1, num_bytes=nsectors * SECTOR_SIZE)
        self._payload_counter.add(len(batch), num_bytes=layout.payload_bytes)
        self._padding_counter.add(0, num_bytes=layout.padded_bytes)

        by_identity: Dict[Tuple[int, int], Any] = {}
        for entry in layout.entries:
            entry.committed = True
            self.active_jmt.add(entry)
            by_identity[(entry.key, entry.version)] = entry
        for request, event, _ts, _ledger in batch:
            entry = by_identity[(request.key, request.version)]
            event.succeed(entry)
        del completion

    def enter_degraded(self, reason: str) -> None:
        """Latch the journal's degraded state (idempotent).

        Wakes a committer parked on the journal-full stall so it fails
        its batch (waking every waiter with None) instead of waiting for
        a rotation that will never come.
        """
        if self.degraded:
            return
        self.degraded = True
        self.degraded_reason = reason or "media errors"
        if self._space_freed is not None and not self._space_freed.triggered:
            self._space_freed.succeed()
            self._space_freed = None

    # ------------------------------------------------------------------
    # checkpoint coordination
    # ------------------------------------------------------------------
    def freeze_when_quiet(self) -> Generator[Any, Any, FrozenEpoch]:
        """Quiesce in-flight transactions, then rotate (checkpoint entry).

        New transactions are held at the door while rotating, so every
        committed entry is either in the frozen JMT (and checkpointed) or
        in the fresh half — never stranded in trimmed sectors.
        """
        if self.frozen is not None:
            raise EngineError("previous frozen epoch not yet released")
        self._rotating = True
        try:
            while self._inflight_txns:
                self._quiesced = self.sim.event()
                yield self._quiesced
            frozen = self.freeze()
        finally:
            self._rotating = False
            if self._rotation_done is not None \
                    and not self._rotation_done.triggered:
                self._rotation_done.succeed()
                self._rotation_done = None
        return frozen

    def freeze(self) -> FrozenEpoch:
        """Rotate to the alternate half/JMT; return the frozen epoch.

        The caller must :meth:`release_frozen` once the checkpoint (and the
        journal deallocation) is durable, and must not call this while a
        transaction is in flight (use :meth:`freeze_when_quiet`).
        """
        if self.frozen is not None:
            raise EngineError("previous frozen epoch not yet released")
        if self._inflight_txns:
            raise EngineError(
                "cannot freeze with a journal transaction in flight")
        half = self._halves[self._active_index]
        frozen = FrozenEpoch(jmt=self.active_jmt, lba_start=half.lba_start,
                             used_sectors=half.head)
        self._epoch += 1
        self._active_index ^= 1
        self._halves[self._active_index].reset()
        self.active_jmt = JournalMappingTable(epoch=self._epoch)
        self.frozen = frozen
        # The fresh half is writable immediately: wake a stalled committer.
        if self._space_freed is not None and not self._space_freed.triggered:
            self._space_freed.succeed()
            self._space_freed = None
        return frozen

    def release_frozen(self) -> None:
        """Mark the frozen half reusable after checkpoint completion."""
        if self.frozen is None:
            raise EngineError("no frozen epoch to release")
        self.frozen.jmt.clear()
        self.frozen = None
        if self._space_freed is not None and not self._space_freed.triggered:
            self._space_freed.succeed()
            self._space_freed = None
