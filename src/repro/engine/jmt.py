"""The journal mapping table (JMT).

Maps each key's *target* location to the *journal* location of its most
recent log (§II-B).  Entries are appended write-ahead; re-updating a key
marks the previous entry OLD instead of modifying it, exactly as the case
study describes, so Algorithm 1 can skip superseded logs.

The engine keeps two JMTs and alternates them per checkpoint epoch: the
frozen one drives checkpointing while the active one keeps absorbing new
updates without blocking.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.engine.records import JournalEntry, JournalFlag


class JournalMappingTable:
    """Write-ahead list of journal entries plus the per-key latest index."""

    def __init__(self, epoch: int = 0) -> None:
        self.epoch = epoch
        self._entries: List[JournalEntry] = []
        self._latest: Dict[int, JournalEntry] = {}
        self.bytes_logged = 0
        """Journal bytes appended this epoch (stored, after formatting)."""

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def distinct_keys(self) -> int:
        """Keys with at least one entry this epoch."""
        return len(self._latest)

    def lookup(self, key: int) -> Optional[JournalEntry]:
        """The most recent entry for ``key``, or None."""
        return self._latest.get(key)

    def entries(self) -> Iterator[JournalEntry]:
        """All entries in write-ahead order."""
        return iter(self._entries)

    def latest_entries(self) -> List[JournalEntry]:
        """Entries still flagged NEW, in write-ahead order.

        This is the set Algorithm 1 checkpoints; the OLD/NEW split is also
        what makes Zipfian checkpoints cheaper than uniform ones
        (Figure 3(b)): hot keys collapse onto a single NEW entry.
        """
        return [entry for entry in self._entries if entry.is_latest]

    def latest_ratio(self) -> float:
        """Fraction of logged entries still latest (checkpoint workload)."""
        if not self._entries:
            return 0.0
        return len(self._latest) / len(self._entries)

    # -- mutations ----------------------------------------------------------
    def add(self, entry: JournalEntry) -> None:
        """Append a new entry, superseding the key's previous one."""
        previous = self._latest.get(entry.key)
        if previous is not None:
            previous.flag = JournalFlag.OLD
        self._latest[entry.key] = entry
        self._entries.append(entry)
        self.bytes_logged += entry.stored_bytes

    def clear(self) -> None:
        """Drop every entry (after a successful checkpoint)."""
        self._entries.clear()
        self._latest.clear()
        self.bytes_logged = 0
