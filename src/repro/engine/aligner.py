"""Journal-log formatting: Algorithm 2 and the conventional packed layout.

The *formatter* decides how a transaction's update requests are laid out in
the journal area.  The two strategies are the crux of the ISC-C vs
Check-In comparison:

* :class:`PackedFormatter` — conventional journaling: a 16-byte header and
  the raw value are appended byte-contiguously.  Values straddle sector
  boundaries and share sectors with their neighbours' headers, so the FTL
  can never satisfy a checkpoint by remapping; every log takes the copy
  path.

* :class:`SectorAlignedFormatter` — Algorithm 2: values larger than the
  mapping unit are compressed and padded to whole units (FULL, remappable);
  smaller values are rounded to quarter-unit classes (PARTIAL) and packed
  together into MERGED units that the ISCE scatters with buffered copies.

Formatters also define each value's *stored size*, which sizes the record's
data-area home so that a remapped journal log lands exactly on it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.checkin.format import (
    LogType,
    MergedPayload,
    PackedSector,
    align_full,
    align_sub_sector,
)
from repro.common.errors import EngineError
from repro.common.units import SECTOR_SIZE, ceil_div, round_up
from repro.engine.records import JournalEntry, value_tag


@dataclass(frozen=True)
class UpdateRequest:
    """One update heading for the journal."""

    key: int
    version: int
    value_bytes: int
    target_lba: int
    target_nsectors: int


@dataclass
class TransactionLayout:
    """A formatted transaction, ready to be written as one block I/O."""

    entries: List[JournalEntry] = field(default_factory=list)
    sector_tags: List[Any] = field(default_factory=list)
    payload_bytes: int = 0
    """Useful bytes (values after compression, plus packed headers)."""

    padded_bytes: int = 0
    """Alignment/packing waste — the space overhead of Figure 13(b)."""

    @property
    def nsectors(self) -> int:
        """Journal sectors this transaction occupies."""
        return len(self.sector_tags)


class JournalFormatter(abc.ABC):
    """Strategy interface for journal-log layout."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier for reports."""

    @abc.abstractmethod
    def stored_size(self, value_bytes: int) -> int:
        """On-device footprint of a checkpointed value of this size."""

    @abc.abstractmethod
    def layout(self, requests: List[UpdateRequest],
               first_lba: int) -> TransactionLayout:
        """Assign journal locations to every request of one transaction."""


class PackedFormatter(JournalFormatter):
    """Conventional byte-contiguous journaling (baseline/ISC-A/B/C)."""

    def __init__(self, header_bytes: int = 16) -> None:
        if header_bytes < 0:
            raise EngineError("header_bytes must be >= 0")
        self.header_bytes = header_bytes

    @property
    def name(self) -> str:
        return "packed"

    def stored_size(self, value_bytes: int) -> int:
        return value_bytes

    def layout(self, requests: List[UpdateRequest],
               first_lba: int) -> TransactionLayout:
        layout = TransactionLayout()
        sectors: List[PackedSector] = []
        cursor = 0
        for request in requests:
            value_start = cursor + self.header_bytes
            value_end = value_start + request.value_bytes
            # The record starts at its *header*: when the header straddles
            # the preceding sector boundary, the entry's sector span must
            # include that sector or recovery reads miss part of the log.
            record_sector = cursor // SECTOR_SIZE
            value_sector = value_start // SECTOR_SIZE
            while len(sectors) <= (value_end - 1) // SECTOR_SIZE:
                sectors.append(PackedSector())
            sectors[value_sector].add(value_start % SECTOR_SIZE,
                                      value_tag(request.key, request.version))
            layout.entries.append(JournalEntry(
                key=request.key,
                version=request.version,
                target_lba=request.target_lba,
                target_nsectors=request.target_nsectors,
                value_bytes=request.value_bytes,
                stored_bytes=self.header_bytes + request.value_bytes,
                journal_lba=first_lba + record_sector,
                journal_nsectors=((value_end - 1) // SECTOR_SIZE) - record_sector + 1,
                src_offset=value_start - record_sector * SECTOR_SIZE,
                log_type=LogType.FULL,
                exclusive_sectors=False,
            ))
            cursor = value_end
        layout.sector_tags = list(sectors)
        layout.payload_bytes = cursor
        layout.padded_bytes = len(sectors) * SECTOR_SIZE - cursor
        return layout


class SectorAlignedFormatter(JournalFormatter):
    """Algorithm 2: mapping-unit-aligned journaling (Check-In)."""

    def __init__(self, mapping_size: int = SECTOR_SIZE,
                 compress_ratio: float = 1.0) -> None:
        if mapping_size < SECTOR_SIZE or mapping_size % SECTOR_SIZE:
            raise EngineError("mapping_size must be a multiple of 512")
        if not 0.0 < compress_ratio <= 1.0:
            raise EngineError("compress_ratio must be in (0, 1]")
        self.mapping_size = mapping_size
        self.compress_ratio = compress_ratio

    @property
    def name(self) -> str:
        return f"aligned-{self.mapping_size}"

    # -- sizing ------------------------------------------------------------
    def effective_bytes(self, value_bytes: int) -> int:
        """Value bytes after (modelled) compression."""
        if value_bytes > self.mapping_size:
            return max(1, int(value_bytes * self.compress_ratio))
        return value_bytes

    def stored_size(self, value_bytes: int) -> int:
        """Algorithm 2's formatted size.

        The sub-sector classes are the paper's fixed 128/256/384/512
        regardless of the mapping unit; mid-range values pad to whole
        sectors; only values larger than the unit are compressed and
        padded to whole units (the remappable FULL class).
        """
        if value_bytes > self.mapping_size:
            return align_full(value_bytes, self.compress_ratio, self.mapping_size)
        if value_bytes <= SECTOR_SIZE:
            return align_sub_sector(value_bytes, SECTOR_SIZE)
        return round_up(value_bytes, SECTOR_SIZE)

    def classify(self, value_bytes: int) -> LogType:
        """FULL (occupies whole mapping units) or PARTIAL (sub-unit)."""
        stored = self.stored_size(value_bytes)
        return LogType.FULL if stored % self.mapping_size == 0 \
            else LogType.PARTIAL

    # -- layout ------------------------------------------------------------
    def layout(self, requests: List[UpdateRequest],
               first_lba: int) -> TransactionLayout:
        layout = TransactionLayout()
        unit_sectors = self.mapping_size // SECTOR_SIZE
        cursor_sectors = 0

        partials: List[UpdateRequest] = []
        for request in requests:
            if self.classify(request.value_bytes) is LogType.FULL:
                cursor_sectors = self._place_full(
                    layout, request, first_lba, cursor_sectors)
            else:
                partials.append(request)

        # WriteJournalLogs (Algorithm 2 lines 21-29): merge partial logs
        # into shared units, first-fit in arrival order.
        groups: List[MergedPayload] = []
        members: List[List[JournalEntry]] = []
        for request in partials:
            aligned = self.stored_size(request.value_bytes)
            target_group: Optional[int] = None
            for index, group in enumerate(groups):
                if group.fits(aligned):
                    target_group = index
                    break
            if target_group is None:
                groups.append(MergedPayload(capacity=self.mapping_size))
                members.append([])
                target_group = len(groups) - 1
            offset = groups[target_group].add(
                aligned, value_tag(request.key, request.version))
            entry = JournalEntry(
                key=request.key,
                version=request.version,
                target_lba=request.target_lba,
                target_nsectors=request.target_nsectors,
                value_bytes=request.value_bytes,
                stored_bytes=aligned,
                journal_lba=0,  # patched below once the unit is placed
                journal_nsectors=unit_sectors,
                src_offset=offset,
                log_type=LogType.PARTIAL,
                exclusive_sectors=False,
            )
            members[target_group].append(entry)
            layout.payload_bytes += request.value_bytes
            layout.padded_bytes += aligned - request.value_bytes

        for group, entries in zip(groups, members):
            unit_lba = first_lba + cursor_sectors
            unit_tags = [group] + [None] * (unit_sectors - 1)
            layout.sector_tags.extend(unit_tags)
            merged = len(entries) > 1
            for entry in entries:
                entry.journal_lba = unit_lba
                if merged:
                    entry.log_type = LogType.MERGED
                entry.exclusive_sectors = not merged
                layout.entries.append(entry)
            layout.padded_bytes += self.mapping_size - group.used_bytes
            cursor_sectors += unit_sectors
        return layout

    def _place_full(self, layout: TransactionLayout, request: UpdateRequest,
                    first_lba: int, cursor_sectors: int) -> int:
        stored = self.stored_size(request.value_bytes)
        nsectors = ceil_div(stored, SECTOR_SIZE)
        tag = value_tag(request.key, request.version)
        layout.sector_tags.extend([tag] * nsectors)
        layout.entries.append(JournalEntry(
            key=request.key,
            version=request.version,
            target_lba=request.target_lba,
            target_nsectors=request.target_nsectors,
            value_bytes=request.value_bytes,
            stored_bytes=stored,
            journal_lba=first_lba + cursor_sectors,
            journal_nsectors=nsectors,
            src_offset=0,
            log_type=LogType.FULL,
            exclusive_sectors=True,
        ))
        effective = self.effective_bytes(request.value_bytes)
        layout.payload_bytes += effective
        layout.padded_bytes += stored - effective
        return cursor_sectors + nsectors
