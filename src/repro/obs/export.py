"""Blame exporters: schema-versioned JSONL dump and validation.

The ``repro-blame/v1`` layout is one self-describing JSON object per
line (mirroring the telemetry JSONL):

* line 1 — a ``header`` record (``schema``, run label, tenant names,
  the stage taxonomy);
* one ``tenant`` record per tenant with its per-category totals;
* one ``tail`` record per tenant (p99 threshold, tail vs. all shares,
  checkpoint-attributable tail share);
* one ``exemplar`` record per worst-K request, carrying the linked
  trace ``span_id`` (null when the run was untraced);
* one ``hist`` record per (tenant, category) with log2 buckets;
* a final ``footer`` record with counts, so truncation is detectable.

:func:`validate_blame_file` re-reads a dump and checks the schema
version, required keys, per-tenant conservation (category totals summing
to the tenant's total) and footer counts — the CI blame smoke job runs
it on a fresh dump.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.common.jsonl import validate_jsonl_file, write_jsonl
from repro.obs.blame import CATEGORIES, BlameRunReport

SCHEMA = "repro-blame/v1"

_REQUIRED = {
    "header": ("schema", "label", "tenants", "categories"),
    "tenant": ("tenant", "requests", "total_ns", "totals"),
    "tail": ("tenant", "p", "threshold_ns", "tail_requests",
             "tail_shares", "all_shares", "ckpt_tail_share"),
    "exemplar": ("tenant", "rank", "op", "key", "total_ns",
                 "during_ckpt", "span_id", "charges"),
    "hist": ("tenant", "category", "buckets"),
    "footer": ("tenants", "exemplars", "hists"),
}


def blame_records(report: BlameRunReport,
                  p: float = 99.0) -> List[Dict[str, Any]]:
    """The full dump of one run report as a list of JSONL records."""
    records: List[Dict[str, Any]] = [{
        "type": "header",
        "schema": SCHEMA,
        "label": report.label,
        "tenants": [tenant for tenant, _c in report.tenants],
        "categories": list(CATEGORIES),
    }]
    exemplar_count = 0
    hist_count = 0
    for tenant, collector in report.tenants:
        records.append({
            "type": "tenant",
            "tenant": tenant,
            "requests": collector.requests,
            "total_ns": collector.total_ns(),
            "totals": collector.category_totals(),
        })
        profile = collector.tail_profile(p)
        records.append({
            "type": "tail",
            "tenant": tenant,
            "p": profile.p,
            "threshold_ns": profile.threshold_ns,
            "tail_requests": profile.tail_requests,
            "tail_shares": profile.tail_shares,
            "all_shares": profile.all_shares,
            "ckpt_tail_share": profile.ckpt_tail_share,
            "dominant_tail": profile.dominant_tail_category(),
        })
        for rank, (total_ns, op, key, during_ckpt, span_id, charges) \
                in enumerate(collector.exemplars(), 1):
            records.append({
                "type": "exemplar",
                "tenant": tenant,
                "rank": rank,
                "op": op,
                "key": key,
                "total_ns": total_ns,
                "during_ckpt": during_ckpt,
                "span_id": span_id,
                "charges": charges,
            })
            exemplar_count += 1
        for category, buckets in collector.histograms().items():
            records.append({
                "type": "hist",
                "tenant": tenant,
                "category": category,
                "buckets": [[floor, count]
                            for floor, count in buckets.items()],
            })
            hist_count += 1
    records.append({
        "type": "footer",
        "tenants": len(report.tenants),
        "exemplars": exemplar_count,
        "hists": hist_count,
    })
    return records


def write_blame_jsonl(path: str, report: BlameRunReport,
                      p: float = 99.0) -> int:
    """Dump one run report to ``path``; returns the record count."""
    return write_jsonl(path, blame_records(report, p))


def _check_blame_record(index: int, record: Dict[str, Any],
                        header: Dict[str, Any],
                        problems: List[str]) -> None:
    """Blame-specific domain checks layered on the shared skeleton."""
    kind = record.get("type")
    if kind == "tenant":
        totals = record.get("totals", {})
        known = set(header.get("categories", CATEGORIES))
        unknown = set(totals) - known
        if unknown:
            problems.append(
                f"tenant {record.get('tenant')}: unknown categories "
                f"{sorted(unknown)}")
        # Conservation survives serialisation: the per-category
        # totals of a tenant must sum exactly to its total_ns.
        if sum(totals.values()) != record.get("total_ns", 0):
            problems.append(
                f"tenant {record.get('tenant')}: category totals "
                f"{sum(totals.values())} != total_ns "
                f"{record.get('total_ns')}")
    elif kind == "exemplar":
        total = record.get("total_ns", 0)
        if sum(record.get("charges", {}).values()) != total:
            problems.append(
                f"exemplar {record.get('tenant')}#{record.get('rank')}"
                f": charges do not sum to total_ns")
    elif kind == "hist":
        for bucket in record.get("buckets", []):
            if not (isinstance(bucket, list) and len(bucket) == 2):
                problems.append(
                    f"hist {record.get('category')}: malformed bucket")
                break


def validate_blame_file(path: str) -> List[str]:
    """Structural validation of a JSONL dump; returns problems found."""
    return validate_jsonl_file(
        path, schema=SCHEMA, required=_REQUIRED,
        counted={"tenant": "tenants", "exemplar": "exemplars",
                 "hist": "hists"},
        what="blame", record_check=_check_blame_record)
