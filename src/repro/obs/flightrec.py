"""Black-box flight recorder: a bounded ring of high-signal events.

Every layer of the stack already *detects* its own transients — watchdog
edges, admission sheds, checkpoint phases, media retries, bad-block
retirements, GC victim picks, replication NACKs, degraded-mode entry —
but the evidence evaporates into three mutually-unaware exporters. The
flight recorder is the always-on black box: a :class:`collections.deque`
ring of plain tuples that call sites append to **synchronously** (zero
added simulator yields, so enabling it cannot perturb simulated time),
bounded so a week-long run costs the same memory as a short one.

Wiring follows the house tracer pattern: ``Simulator.flightrec`` is
``None`` by default and every hook guards with ``if fr is not None`` —
disabled runs allocate nothing and stay byte-identical (the CI
incident-smoke job asserts this, like the other observability planes).

Event tuples are ``(t_ns, layer, kind, span_id, detail)``:

* ``layer`` / ``kind`` — e.g. ``("ckpt", "phase_begin")``,
  ``("admission", "shed")``, ``("ftl", "degraded")``;
* ``span_id`` — the trace span the event belongs to (``None`` when the
  run is untraced); these are the cross-plane links the incident bundle
  resolves against the trace dump;
* ``detail`` — a small dict of event-specific fields (or ``None``).

Incident **triggers** (watchdog error-edges, crash/power-cut, promote,
degraded entry) are recorded on the same object via :meth:`trip`; the
incident dumper brackets its evidence window around the first one.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

FlightEvent = Tuple[int, str, str, Optional[int], Optional[Dict[str, Any]]]
Trigger = Tuple[int, str, Optional[Dict[str, Any]]]

DEFAULT_CAPACITY = 1024
"""Ring size: enough to hold the run-up to any single incident."""

MAX_TRIGGERS = 64
"""Triggers kept (a degraded run can re-trip watchdogs indefinitely)."""


class FlightRecorder:
    """Bounded in-memory ring of ``(t_ns, layer, kind, span_id, detail)``.

    Appends are plain-tuple pushes onto a ``deque(maxlen=...)`` — no
    yields, no I/O, no clock reads — so an enabled recorder observes the
    run without participating in it.
    """

    __slots__ = ("capacity", "events", "triggers", "dropped", "node")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 node: Optional[str] = None) -> None:
        self.capacity = capacity
        self.events: "deque[FlightEvent]" = deque(maxlen=capacity)
        self.triggers: List[Trigger] = []
        self.dropped = 0
        self.node = node

    def record(self, t_ns: int, layer: str, kind: str,
               span_id: Optional[int] = None,
               detail: Optional[Dict[str, Any]] = None) -> None:
        """Append one event; evicts the oldest when the ring is full."""
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append((t_ns, layer, kind, span_id, detail))

    def trip(self, t_ns: int, reason: str,
             detail: Optional[Dict[str, Any]] = None) -> None:
        """Mark an incident trigger (and record it as a ring event)."""
        if len(self.triggers) < MAX_TRIGGERS:
            self.triggers.append((t_ns, reason, detail))
        self.record(t_ns, "incident", "trigger", None,
                    dict(detail or (), reason=reason))

    @property
    def first_trigger(self) -> Optional[Trigger]:
        return self.triggers[0] if self.triggers else None

    def tail(self, n: Optional[int] = None) -> List[FlightEvent]:
        """The most recent ``n`` events (all retained when ``None``)."""
        events = list(self.events)
        return events if n is None else events[-n:]

    def span_ids(self) -> List[int]:
        """Distinct trace span ids referenced by retained events."""
        seen = {event[3] for event in self.events if event[3] is not None}
        return sorted(seen)

    def __len__(self) -> int:
        return len(self.events)


# ----------------------------------------------------------------------
# process-wide switch (mirrors the blame/telemetry switches)
# ----------------------------------------------------------------------
_GLOBAL_ENABLED = False
_GLOBAL_CAPACITY = DEFAULT_CAPACITY


def enable_flightrec(capacity: int = DEFAULT_CAPACITY) -> None:
    """Arm the recorder for every subsequently-built ``KvSystem``."""
    global _GLOBAL_ENABLED, _GLOBAL_CAPACITY
    _GLOBAL_ENABLED = True
    _GLOBAL_CAPACITY = capacity


def disable_flightrec() -> None:
    global _GLOBAL_ENABLED, _GLOBAL_CAPACITY
    _GLOBAL_ENABLED = False
    _GLOBAL_CAPACITY = DEFAULT_CAPACITY


def flightrec_enabled() -> bool:
    return _GLOBAL_ENABLED


def flightrec_capacity() -> int:
    return _GLOBAL_CAPACITY
