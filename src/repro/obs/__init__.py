"""``repro.obs`` — per-request latency attribution ("blame").

Public surface:

* :class:`RequestLedger` / :func:`fold_completion` / :func:`add_ns` —
  the attribution primitives threaded along the request path (see
  :mod:`repro.obs.blame` for the conservation invariant);
* :class:`BlameCollector` / :class:`BlameRunReport` and the table
  renderers — per-tenant summaries, tail profiles, exemplars;
* :func:`write_blame_jsonl` / :func:`validate_blame_file` — the
  ``repro-blame/v1`` JSONL export;
* the **global blame switch** below, mirroring ``repro.trace``: the CLI
  flips the process-wide switch and every system constructed while it
  is on builds per-tenant collectors and registers its run report here
  for one merged export;
* the **flight recorder** (:mod:`repro.obs.flightrec`) and the
  ``repro-incident/v1`` forensics bundle (:mod:`repro.obs.incident`):
  the always-on black box every layer appends high-signal events to,
  and the cross-plane dump triggered when something goes wrong.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.obs.blame import (
    CATEGORIES,
    CKPT_FAMILY,
    RESIDUAL,
    BlameCollector,
    BlameError,
    BlameRecord,
    BlameRunReport,
    RequestLedger,
    TailProfile,
    add_ns,
    blame_table,
    exemplar_table,
    fold_completion,
    tail_table,
)
from repro.obs.export import (
    SCHEMA,
    blame_records,
    validate_blame_file,
    write_blame_jsonl,
)
from repro.obs.flightrec import (
    FlightRecorder,
    disable_flightrec,
    enable_flightrec,
    flightrec_capacity,
    flightrec_enabled,
)
from repro.obs.incident import (
    build_timeline,
    dominant_stage,
    incident_records,
    load_incident_file,
    pair_incident_records,
    resolve_against_trace,
    timeline_table,
    validate_incident_file,
    write_incident_jsonl,
)

__all__ = [
    "CATEGORIES", "CKPT_FAMILY", "RESIDUAL",
    "BlameCollector", "BlameError", "BlameRecord", "BlameRunReport",
    "RequestLedger", "TailProfile", "add_ns", "fold_completion",
    "blame_table", "tail_table", "exemplar_table",
    "SCHEMA", "blame_records", "validate_blame_file", "write_blame_jsonl",
    "enable_blame", "disable_blame", "blame_enabled",
    "register_blame", "collected_blame", "clear_blame",
    "FlightRecorder", "enable_flightrec", "disable_flightrec",
    "flightrec_enabled", "flightrec_capacity",
    "incident_records", "pair_incident_records", "write_incident_jsonl",
    "validate_incident_file", "load_incident_file",
    "resolve_against_trace", "build_timeline", "dominant_stage",
    "timeline_table",
]

_GLOBAL_ENABLED = False
_RUNS: List[BlameRunReport] = []
_LABEL_COUNTS: dict = {}


def enable_blame() -> None:
    """Turn the process-wide blame switch on (CLI ``repro blame``)."""
    global _GLOBAL_ENABLED
    _GLOBAL_ENABLED = True


def disable_blame() -> None:
    """Turn the switch off (new systems skip ledger allocation)."""
    global _GLOBAL_ENABLED
    _GLOBAL_ENABLED = False


def blame_enabled() -> bool:
    """True while the process-wide switch is on."""
    return _GLOBAL_ENABLED


def register_blame(label: str,
                   tenants: List[Tuple[str, BlameCollector]]
                   ) -> BlameRunReport:
    """Build a run report and register it for export.

    Labels are uniquified (``checkin``, ``checkin#2`` …) so multi-run
    sweeps export one report per run.
    """
    count = _LABEL_COUNTS.get(label, 0) + 1
    _LABEL_COUNTS[label] = count
    unique = label if count == 1 else f"{label}#{count}"
    report = BlameRunReport(label=unique, tenants=tenants)
    _RUNS.append(report)
    return report


def collected_blame() -> List[BlameRunReport]:
    """Every report registered since the last :func:`clear_blame`."""
    return list(_RUNS)


def clear_blame() -> None:
    """Drop collected reports (start of a blamed CLI invocation)."""
    _RUNS.clear()
    _LABEL_COUNTS.clear()
