"""Per-request latency attribution ("blame") ledgers.

Every completed request can carry a :class:`RequestLedger` that splits
its end-to-end latency into named stages — where did the nanoseconds go?
The paper's headline claim is causal (checkpointing *causes* tail
inflation; in-storage remap removes the cause), and the ledger makes the
cause measurable per request: "p99 is 1.81x because 72% of tail time is
checkpoint-induced stall", not just "p99 is 1.81x".

Design constraints:

* **Exact conservation.**  Attributed nanoseconds sum *exactly* to the
  request's end-to-end latency in simulated time.  This works because
  the simulator is a discrete-event system with zero-delay event
  resolution: a window measured by the waiter around ``yield event``
  equals the producer-side window to the nanosecond.  Each charge is a
  measured wall-clock window taken sequentially inside the request's
  own process (windows tile without overlap); whatever is not measured
  becomes the ``host_cpu`` residual at :meth:`RequestLedger.finalize`,
  and a *negative* residual (over-attribution) is a hard error.
* **Zero overhead when disabled.**  Every instrumentation site guards
  on ``blame is not None``; a disabled run allocates nothing and reads
  no clocks.  Even when enabled, blame only *measures* existing windows
  — it adds no yields and never changes simulated time, so counter
  snapshots stay byte-identical either way (CI-asserted).

Cross-process waits fold producer-side breakdowns: the device path
accumulates charges into a plain dict on the :class:`Command`
(``command.blame``), and the submitter folds that dict into the ledger
with :func:`fold_completion`, charging the uncovered remainder of the
wait window to a designated residual category.  Journal group commits
fold the *same* absolute breakdown into every batch member's ledger —
they all waited the identical windows concurrently.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError


class BlameError(SimulationError):
    """Attribution accounting went wrong (over-attributed a window)."""


CATEGORIES = (
    "admission",           # front-door admission wait / shed decision
    "ckpt_freeze_stall",   # engine query gate + journal rotation wait
    "journal_queue",       # group-commit gathering + committer backlog
    "journal_full_stall",  # journal half full, waiting on a checkpoint
    "journal_commit",      # journal txn device write (host-side residual)
    "repl_ship",           # semi-sync wait for the replication shipper
    "ckpt_interference",   # device admission wait behind checkpoint cmds
    "ctrl_queue",          # device admission wait (no checkpoint active)
    "ctrl_bus",            # host-interface command overhead + transfers
    "ctrl_cpu",            # embedded-CPU service + controller residual
    "coalescer",           # write-coalescer merge bookkeeping
    "ftl_map",             # map-cache touches, mapping updates, LPN locks
    "gc_stall",            # foreground GC stall on the write path
    "flash_read",          # flash page reads (incl. staged-read service)
    "flash_program",       # write-buffer backpressure from page programs
    "media_retry",         # failed command attempts + retry backoff
    "host_cpu",            # engine CPU work + unattributed residual
)
"""The stage taxonomy, in pipeline order (see DESIGN.md §15)."""

CKPT_FAMILY = frozenset(
    ("ckpt_freeze_stall", "journal_full_stall", "ckpt_interference"))
"""Stages whose time exists *because* a checkpoint is (or needs to be)
running — the checkpoint-attributable share of a request's latency."""

RESIDUAL = "host_cpu"
"""Category absorbing the unmeasured remainder at finalize time."""

ADMISSION = "admission"
"""Stage charged for time spent queued at (or shed by) the front-door
admission controller, before the engine ever sees the request."""


def add_ns(blame: Dict[str, int], category: str, ns: int) -> None:
    """Charge ``ns`` to ``category`` in a device-side blame dict."""
    if ns > 0:
        blame[category] = blame.get(category, 0) + ns


class RequestLedger:
    """One request's blame ledger (plain ``__slots__`` hot-path class)."""

    __slots__ = ("op", "key", "during_ckpt", "span_id", "charges",
                 "total_ns")

    def __init__(self, op: str, key: int, during_ckpt: bool = False,
                 span_id: Optional[int] = None) -> None:
        self.op = op
        self.key = key
        self.during_ckpt = during_ckpt
        self.span_id = span_id
        self.charges: Dict[str, int] = {}
        self.total_ns: int = 0

    def charge(self, category: str, ns: int) -> None:
        """Attribute ``ns`` nanoseconds of this request to ``category``."""
        if ns > 0:
            self.charges[category] = self.charges.get(category, 0) + ns

    def charged_ns(self) -> int:
        """Nanoseconds attributed so far."""
        return sum(self.charges.values())

    def finalize(self, total_ns: int) -> None:
        """Close the ledger against the measured end-to-end latency.

        The unattributed remainder goes to :data:`RESIDUAL` (engine CPU
        windows are deliberately left unmeasured — they are the residual
        by construction).  A negative remainder means some window was
        double-charged; that is an accounting bug, so it raises instead
        of clamping.
        """
        residual = total_ns - self.charged_ns()
        if residual < 0:
            raise BlameError(
                f"over-attributed request (op={self.op} key={self.key}): "
                f"charged {self.charged_ns()} ns > total {total_ns} ns "
                f"({self.charges})")
        if residual:
            self.charge(RESIDUAL, residual)
        self.total_ns = total_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RequestLedger(op={self.op!r}, key={self.key}, "
                f"total_ns={self.total_ns}, charges={self.charges})")


def fold_completion(ledger: RequestLedger, window_ns: int,
                    blame: Optional[Dict[str, int]],
                    residual_category: str) -> None:
    """Fold a device-side blame dict into ``ledger`` for one wait window.

    ``window_ns`` is the submitter-measured wait around ``yield submit``;
    because event resolution is zero-delay it equals the device-side
    end-to-end window exactly, so the dict's charges can never exceed it
    — if they do, the attribution double-charged somewhere and we raise.
    The uncovered remainder goes to ``residual_category``.
    """
    charged = 0
    if blame:
        for category, ns in blame.items():
            ledger.charge(category, ns)
            charged += ns
    residual = window_ns - charged
    if residual < 0:
        raise BlameError(
            f"device charges {charged} ns exceed wait window {window_ns} "
            f"ns ({blame})")
    if residual:
        ledger.charge(residual_category, residual)


# ----------------------------------------------------------------------
# collection and summaries
# ----------------------------------------------------------------------
BlameRecord = Tuple[int, str, int, bool, Optional[int], Dict[str, int]]
"""``(total_ns, op, key, during_ckpt, span_id, charges)``."""


def _percentile(sorted_totals: Sequence[int], p: float) -> int:
    """Nearest-rank percentile of an ascending total list."""
    if not sorted_totals:
        return 0
    index = min(len(sorted_totals) - 1,
                max(0, int(len(sorted_totals) * p / 100.0)))
    return sorted_totals[index]


def _shares(records: Sequence[BlameRecord]) -> Dict[str, float]:
    """Per-category share of the summed latency of ``records``."""
    totals: Dict[str, int] = {}
    grand = 0
    for total_ns, _op, _key, _ckpt, _span, charges in records:
        grand += total_ns
        for category, ns in charges.items():
            totals[category] = totals.get(category, 0) + ns
    if grand <= 0:
        return {}
    return {category: ns / grand for category, ns in totals.items()}


@dataclass
class TailProfile:
    """Blame conditioned on the slowest requests vs. the whole run."""

    p: float
    threshold_ns: int
    tail_requests: int
    all_requests: int
    tail_shares: Dict[str, float]
    all_shares: Dict[str, float]

    @property
    def ckpt_tail_share(self) -> float:
        """Checkpoint-attributable fraction of tail-request time."""
        return sum(share for category, share in self.tail_shares.items()
                   if category in CKPT_FAMILY)

    def dominant_tail_category(self) -> str:
        """The stage that costs the tail the most ('' when empty)."""
        if not self.tail_shares:
            return ""
        return max(self.tail_shares.items(), key=lambda item: item[1])[0]


class BlameCollector:
    """All finalized ledgers of one tenant (or one whole run).

    The hot path is a single tuple append; every summary (totals,
    histograms, tail profile, exemplars) is derived lazily at report
    time so an enabled run stays cheap.
    """

    def __init__(self, tenant: str = "tenant0",
                 exemplar_k: int = 8) -> None:
        self.tenant = tenant
        self.exemplar_k = exemplar_k
        self.records: List[BlameRecord] = []

    def record(self, ledger: RequestLedger) -> None:
        """Absorb one finalized ledger."""
        self.records.append((ledger.total_ns, ledger.op, ledger.key,
                             ledger.during_ckpt, ledger.span_id,
                             ledger.charges))

    # -- summaries -------------------------------------------------------
    @property
    def requests(self) -> int:
        """Finalized requests recorded."""
        return len(self.records)

    def total_ns(self) -> int:
        """Summed end-to-end latency of every recorded request."""
        return sum(record[0] for record in self.records)

    def category_totals(self) -> Dict[str, int]:
        """Summed nanoseconds per category across all requests."""
        totals: Dict[str, int] = {}
        for _t, _op, _key, _ckpt, _span, charges in self.records:
            for category, ns in charges.items():
                totals[category] = totals.get(category, 0) + ns
        return totals

    def tail_profile(self, p: float = 99.0) -> TailProfile:
        """Blame shares of requests strictly above the ``p`` percentile,
        against the shares of the full population."""
        ordered = sorted(record[0] for record in self.records)
        threshold = _percentile(ordered, p)
        tail = [record for record in self.records if record[0] > threshold]
        return TailProfile(p=p, threshold_ns=threshold,
                           tail_requests=len(tail),
                           all_requests=len(self.records),
                           tail_shares=_shares(tail),
                           all_shares=_shares(self.records))

    def exemplars(self, k: Optional[int] = None) -> List[BlameRecord]:
        """The worst-``k`` requests by end-to-end latency."""
        k = self.exemplar_k if k is None else k
        return heapq.nlargest(k, self.records, key=lambda record: record[0])

    def histogram(self, category: str) -> Dict[int, int]:
        """Log2 latency histogram of one category's per-request charges.

        Keys are bucket floors in ns (``1 << (bit_length - 1)``).
        """
        buckets: Dict[int, int] = {}
        for _t, _op, _key, _ckpt, _span, charges in self.records:
            ns = charges.get(category, 0)
            if ns <= 0:
                continue
            floor = 1 << (ns.bit_length() - 1)
            buckets[floor] = buckets.get(floor, 0) + 1
        return dict(sorted(buckets.items()))

    def histograms(self) -> Dict[str, Dict[int, int]]:
        """Per-category log2 histograms (categories actually charged)."""
        return {category: self.histogram(category)
                for category in CATEGORIES
                if any(charges.get(category)
                       for *_rest, charges in self.records)}

    def dominant_category(self) -> str:
        """The single largest category across all requests ('' if none)."""
        totals = self.category_totals()
        if not totals:
            return ""
        return max(totals.items(), key=lambda item: item[1])[0]


@dataclass
class BlameRunReport:
    """Every tenant's blame collector from one finished run."""

    label: str
    tenants: List[Tuple[str, BlameCollector]] = field(default_factory=list)

    def collector(self, name: str) -> BlameCollector:
        """The collector of tenant ``name``."""
        for tenant, collector in self.tenants:
            if tenant == name:
                return collector
        raise KeyError(f"no blame collector for tenant {name!r}")

    def aggregate(self) -> BlameCollector:
        """All tenants' records pooled into one collector."""
        pooled = BlameCollector(tenant="aggregate")
        for _name, collector in self.tenants:
            pooled.records.extend(collector.records)
        return pooled

    @property
    def requests(self) -> int:
        """Finalized requests across every tenant."""
        return sum(collector.requests for _n, collector in self.tenants)

    def ckpt_tail_share(self, p: float = 99.0) -> float:
        """Checkpoint-attributable share of tail time, pooled."""
        return self.aggregate().tail_profile(p).ckpt_tail_share


# ----------------------------------------------------------------------
# CLI renderers
# ----------------------------------------------------------------------
def blame_table(report: BlameRunReport, title: str = "") -> str:
    """Per-tenant, per-category totals and shares."""
    from repro.analysis.tables import format_table
    rows = []
    for tenant, collector in report.tenants:
        totals = collector.category_totals()
        grand = collector.total_ns()
        for category in CATEGORIES:
            ns = totals.get(category, 0)
            if not ns:
                continue
            rows.append([tenant, category, round(ns / 1e6, 3),
                         round(ns / grand * 100.0, 2) if grand else 0.0])
    return format_table(
        ["tenant", "stage", "total_ms", "share_%"], rows,
        title=title or f"blame: {report.requests} requests "
                       f"({report.label})")


def tail_table(report: BlameRunReport, p: float = 99.0,
               title: str = "") -> str:
    """Tail (>p99) blame shares vs. the whole population, per tenant."""
    from repro.analysis.tables import format_table
    rows = []
    for tenant, collector in report.tenants:
        profile = collector.tail_profile(p)
        for category in CATEGORIES:
            tail = profile.tail_shares.get(category, 0.0)
            everyone = profile.all_shares.get(category, 0.0)
            if not tail and not everyone:
                continue
            rows.append([tenant, category, round(tail * 100.0, 2),
                         round(everyone * 100.0, 2)])
    return format_table(
        ["tenant", "stage", f">p{p:g}_share_%", "all_share_%"], rows,
        title=title or f"blame: tail profile above p{p:g}")


def exemplar_table(report: BlameRunReport, k: Optional[int] = None,
                   title: str = "") -> str:
    """Worst-K requests with their dominant stages and trace span ids."""
    from repro.analysis.tables import format_table
    rows = []
    for tenant, collector in report.tenants:
        for total_ns, op, key, during_ckpt, span_id, charges \
                in collector.exemplars(k):
            worst = sorted(charges.items(), key=lambda item: -item[1])[:3]
            rows.append([
                tenant, op, key, round(total_ns / 1e3, 1),
                "yes" if during_ckpt else "no",
                span_id if span_id is not None else "-",
                " ".join(f"{category}={ns // 1000}us"
                         for category, ns in worst)])
    return format_table(
        ["tenant", "op", "key", "total_us", "ckpt", "span", "top stages"],
        rows, title=title or "blame: worst-request exemplars")
