"""Incident forensics: the ``repro-incident/v1`` bundle and timeline.

When something goes wrong mid-run — a watchdog error-edge, a power cut,
a promote, degraded-mode entry — the evidence is scattered across four
planes that export separately: the trace (spans), telemetry (series +
watchdog edges + SMART frames), blame (per-request attribution) and the
flight recorder (the black-box event ring).  The incident dump pulls one
coherent evidence bundle out of all four, bracketed around the trigger:

* line 1 — a ``header`` record (``schema``, label, node, trigger);
* one ``trigger`` record per recorded trigger, in order;
* one ``flight`` record per retained flight-recorder event;
* one ``span`` record per trace span referenced by a flight event —
  the cross-plane link: every flight ``span_id`` must resolve here
  (and in the full trace dump, which carries ``span_id`` in ``args``);
* ``series`` / ``event`` records — the telemetry window bracketing the
  trigger and the watchdog edges inside it;
* one ``blame`` record naming the dominant stage for the incident
  window, plus the worst-K ``exemplar`` records;
* one ``health`` record — the active SMART frame at dump time;
* one optional ``repl`` record per node with ship-lag at dump time
  (cross-node bundles from a :class:`ReplicatedPair`);
* a final ``footer`` record with counts.

:func:`build_timeline` re-reads a bundle into one merged causal
timeline — cross-node bundles interleave both nodes' events in merged
time, annotated with the shipper's lag — and
:func:`dominant_stage` names the blame stage that ate the window.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.common.jsonl import (
    load_jsonl,
    read_jsonl,
    validate_jsonl_file,
    write_jsonl,
)
from repro.common.units import MS

SCHEMA = "repro-incident/v1"

DEFAULT_WINDOW_NS = 10 * MS
"""Telemetry bracket half-width around the trigger."""

DEFAULT_EXEMPLARS = 8
"""Worst-K blame exemplars carried per tenant."""

_REQUIRED = {
    "header": ("schema", "label", "node", "triggers", "flight_events",
               "window_ns"),
    "trigger": ("t_ns", "reason", "node"),
    "flight": ("t_ns", "layer", "kind", "span_id", "node"),
    "span": ("span_id", "component", "name", "start_ns"),
    "series": ("tenant", "layer", "kind", "name", "points"),
    "event": ("t_ns", "watchdog", "kind", "tenant", "severity"),
    "blame": ("tenant", "dominant_stage", "p", "ckpt_tail_share"),
    "exemplar": ("tenant", "rank", "op", "key", "total_ns",
                 "during_ckpt", "span_id", "charges"),
    "health": ("t_ns", "wear_mean", "bad_blocks", "spare_remaining"),
    "repl": ("node", "ship_lag_ops", "ship_lag_bytes", "nacks"),
    "footer": ("triggers", "flight_events", "spans", "series", "events",
               "exemplars"),
}


# ----------------------------------------------------------------------
# bundle assembly
# ----------------------------------------------------------------------
def _node_records(system: Any, node: Optional[str],
                  window_ns: int, k: int) -> Dict[str, List[Dict[str, Any]]]:
    """One system's contribution to a bundle, grouped by record type."""
    groups: Dict[str, List[Dict[str, Any]]] = {
        "trigger": [], "flight": [], "span": [], "series": [],
        "event": [], "blame": [], "exemplar": [], "health": [],
    }
    recorder = system.sim.flightrec
    if recorder is None:
        return groups

    for t_ns, reason, detail in recorder.triggers:
        groups["trigger"].append({
            "type": "trigger", "t_ns": t_ns, "reason": reason,
            "node": node, "detail": detail,
        })
    for t_ns, layer, kind, span_id, detail in recorder.events:
        groups["flight"].append({
            "type": "flight", "t_ns": t_ns, "layer": layer, "kind": kind,
            "span_id": span_id, "node": node, "detail": detail,
        })

    # Cross-plane links: every span id a flight event carries gets its
    # span resolved into the bundle, so the dump is self-validating even
    # without the full trace export next to it.
    wanted = set(recorder.span_ids())
    if wanted and system.sim.tracer.enabled:
        for span in system.sim.tracer.spans():
            if span.span_id in wanted:
                groups["span"].append({
                    "type": "span", "span_id": span.span_id,
                    "component": span.component, "name": span.name,
                    "start_ns": span.start_ns, "end_ns": span.end_ns,
                    "node": node,
                })

    # Telemetry bracket: series points and watchdog edges inside
    # [trigger - window, trigger + window] (everything when untriggered).
    trigger = recorder.first_trigger
    sampler = system.telemetry
    if sampler is not None:
        lo = hi = None
        if trigger is not None:
            lo, hi = trigger[0] - window_ns, trigger[0] + window_ns
        for series in sampler.all_series():
            points = [[t, value] for t, value in series.points
                      if lo is None or lo <= t <= hi]
            if points:
                groups["series"].append({
                    "type": "series", "tenant": series.tenant,
                    "layer": series.layer, "kind": series.kind,
                    "name": series.name, "points": points, "node": node,
                })
        for event in sampler.events:
            if lo is None or lo <= event.t_ns <= hi:
                record = event.as_dict()
                record["node"] = node
                groups["event"].append(record)
        if sampler.health is not None and sampler.health.latest is not None:
            frame = dict(sampler.health.latest)
            frame["node"] = node
            groups["health"].append(frame)

    # Blame: the dominant stage for the incident window (tail-profiled,
    # matching the gated-tail acceptance) plus worst-K exemplars.
    report = system.blame_report
    if report is not None:
        for tenant, collector in report.tenants:
            if collector.requests == 0:
                continue
            profile = collector.tail_profile(99.0)
            groups["blame"].append({
                "type": "blame", "tenant": tenant,
                "dominant_stage": (profile.dominant_tail_category()
                                   or collector.dominant_category()),
                "p": profile.p,
                "ckpt_tail_share": profile.ckpt_tail_share,
                "node": node,
            })
            for rank, (total_ns, op, key, during_ckpt, span_id, charges) \
                    in enumerate(collector.exemplars(k), 1):
                groups["exemplar"].append({
                    "type": "exemplar", "tenant": tenant, "rank": rank,
                    "op": op, "key": key, "total_ns": total_ns,
                    "during_ckpt": during_ckpt, "span_id": span_id,
                    "charges": charges, "node": node,
                })
    return groups


def _assemble(label: str, node: Optional[str],
              groups: Dict[str, List[Dict[str, Any]]],
              window_ns: int,
              repl: Optional[List[Dict[str, Any]]] = None,
              ) -> List[Dict[str, Any]]:
    triggers = sorted(groups["trigger"], key=lambda r: r["t_ns"])
    first = triggers[0] if triggers else None
    records: List[Dict[str, Any]] = [{
        "type": "header", "schema": SCHEMA, "label": label, "node": node,
        "triggers": len(triggers), "flight_events": len(groups["flight"]),
        "window_ns": window_ns,
        "trigger_t_ns": first["t_ns"] if first else None,
        "trigger_reason": first["reason"] if first else None,
    }]
    records.extend(triggers)
    records.extend(sorted(groups["flight"], key=lambda r: r["t_ns"]))
    records.extend(groups["span"])
    records.extend(groups["series"])
    records.extend(groups["event"])
    records.extend(groups["blame"])
    records.extend(groups["exemplar"])
    records.extend(groups["health"])
    if repl:
        records.extend(repl)
    records.append({
        "type": "footer",
        "triggers": len(triggers),
        "flight_events": len(groups["flight"]),
        "spans": len(groups["span"]),
        "series": len(groups["series"]),
        "events": len(groups["event"]),
        "exemplars": len(groups["exemplar"]),
    })
    return records


def incident_records(system: Any, *, window_ns: int = DEFAULT_WINDOW_NS,
                     k: int = DEFAULT_EXEMPLARS) -> List[Dict[str, Any]]:
    """One system's incident bundle as a list of JSONL records."""
    groups = _node_records(system, None, window_ns, k)
    return _assemble(system.config.mode, None, groups, window_ns)


def pair_incident_records(pair: Any, *,
                          window_ns: int = DEFAULT_WINDOW_NS,
                          k: int = DEFAULT_EXEMPLARS
                          ) -> List[Dict[str, Any]]:
    """Cross-node bundle for a :class:`ReplicatedPair`.

    Both nodes' flight events merge into one bundle (tagged ``node``) in
    merged simulated time; the ``repl`` records carry the shipper's lag
    so the timeline can annotate how far behind the replica was.
    """
    merged: Dict[str, List[Dict[str, Any]]] = {
        "trigger": [], "flight": [], "span": [], "series": [],
        "event": [], "blame": [], "exemplar": [], "health": [],
    }
    for node, system in (("primary", pair.primary),
                         ("replica", pair.replica)):
        for kind, records in _node_records(system, node, window_ns,
                                           k).items():
            merged[kind].extend(records)
    repl = [{
        "type": "repl", "node": "primary",
        "ship_lag_ops": pair.shipper.ship_lag_ops,
        "ship_lag_bytes": pair.shipper.ship_lag_bytes,
        "nacks": pair.shipper.nacks,
        "applied_offset": pair.applier.applied_offset,
        "kill_t_ns": pair._t_kill,
    }]
    return _assemble(pair.config.mode, "pair", merged, window_ns, repl)


def write_incident_jsonl(path: str,
                         records: List[Dict[str, Any]]) -> int:
    """Dump a bundle to ``path``; returns the record count."""
    return write_jsonl(path, records)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def validate_incident_file(path: str) -> List[str]:
    """Structural + cross-plane validation; returns problems found."""
    problems = validate_jsonl_file(
        path, schema=SCHEMA, required=_REQUIRED,
        counted={"trigger": "triggers", "flight": "flight_events",
                 "span": "spans", "series": "series", "event": "events",
                 "exemplar": "exemplars"},
        what="incident")
    records, _ = read_jsonl(path)
    # Cross-plane link check: every span id a flight event carries must
    # resolve to a span record in the same bundle.
    resolved = {record.get("span_id") for record in records
                if record.get("type") == "span"}
    for record in records:
        if record.get("type") != "flight":
            continue
        span_id = record.get("span_id")
        if span_id is not None and span_id not in resolved:
            problems.append(
                f"flight event {record.get('layer')}/{record.get('kind')}"
                f" at t={record.get('t_ns')}: span_id {span_id} does not"
                " resolve in the bundle")
    return problems


def resolve_against_trace(records: List[Dict[str, Any]],
                          trace_document: Any) -> List[str]:
    """Check flight span ids against a full Chrome trace dump.

    The trace export carries each span's ``span_id`` in ``args``; every
    id a flight event references must appear there.  Returns problems.
    """
    exported = set()
    for event in (trace_document or {}).get("traceEvents", []):
        span_id = (event.get("args") or {}).get("span_id")
        if span_id is not None:
            exported.add(span_id)
    problems = []
    for record in records:
        if record.get("type") != "flight":
            continue
        span_id = record.get("span_id")
        if span_id is not None and span_id not in exported:
            problems.append(
                f"flight span_id {span_id} "
                f"({record.get('layer')}/{record.get('kind')}) missing "
                "from the trace dump")
    return problems


# ----------------------------------------------------------------------
# timeline reconstruction
# ----------------------------------------------------------------------
def load_incident_file(path: str) -> List[Dict[str, Any]]:
    """Strict bundle loader (raises ``UnknownSchemaError`` on foreign
    dumps)."""
    return load_jsonl(path, SCHEMA)


def _describe(detail: Optional[Dict[str, Any]]) -> str:
    if not detail:
        return ""
    return " ".join(f"{key}={value}" for key, value in detail.items())


def build_timeline(records: List[Dict[str, Any]]
                   ) -> List[Tuple[int, str, str, str, str]]:
    """Merge a bundle into one causal timeline.

    Returns rows ``(t_ns, node, plane, what, detail)`` sorted by merged
    simulated time; flight events, watchdog edges and triggers
    interleave, and replication-layer rows are annotated with the
    shipper's lag from the bundle's ``repl`` record.
    """
    lag = next((record for record in records
                if record.get("type") == "repl"), None)
    lag_note = (f"ship_lag={lag['ship_lag_ops']}ops"
                f"/{lag['ship_lag_bytes']}B" if lag else "")
    rows: List[Tuple[int, str, str, str, str]] = []
    for record in records:
        kind = record.get("type")
        node = record.get("node") or "-"
        if kind == "flight":
            what = f"{record['layer']}.{record['kind']}"
            detail = _describe(record.get("detail"))
            if record.get("span_id") is not None:
                detail = f"span={record['span_id']} {detail}".rstrip()
            if record["layer"] == "repl" and lag_note:
                detail = f"{detail} [{lag_note}]".lstrip()
            rows.append((record["t_ns"], node, "flight", what, detail))
        elif kind == "event":
            what = f"{record['watchdog']}:{record['kind']}"
            detail = (f"severity={record['severity']} "
                      f"value={record.get('value', 0):g}")
            if record.get("blame"):
                detail += f" blame={record['blame']}"
            rows.append((record["t_ns"], node, "watchdog", what, detail))
        elif kind == "trigger":
            rows.append((record["t_ns"], node, "TRIGGER",
                         record["reason"], _describe(record.get("detail"))))
    rows.sort(key=lambda row: (row[0], row[2] != "TRIGGER"))
    return rows


def dominant_stage(records: List[Dict[str, Any]]) -> Optional[str]:
    """The blame stage that dominated the incident window.

    Single-node bundles have one ``blame`` record per tenant; the stage
    of the tenant with the largest checkpoint-tail share wins (they
    agree on single-tenant runs).
    """
    blames = [record for record in records
              if record.get("type") == "blame"]
    if not blames:
        return None
    best = max(blames, key=lambda record: record.get("ckpt_tail_share", 0))
    return best.get("dominant_stage")


def timeline_table(records: List[Dict[str, Any]], title: str = "") -> str:
    """Render a bundle's merged timeline as a fixed-width table."""
    from repro.analysis.tables import format_table
    rows = [[f"{t_ns / 1e6:.3f}", node, plane, what, detail]
            for t_ns, node, plane, what, detail in build_timeline(records)]
    header = records[0] if records else {}
    stage = dominant_stage(records)
    return format_table(
        ["t_ms", "node", "plane", "what", "detail"], rows,
        title=title or (
            f"incident: {header.get('label', '?')} — trigger "
            f"{header.get('trigger_reason') or 'none'}"
            + (f", dominant stage {stage}" if stage else "")))
