"""Paper-vs-measured comparison helpers.

A reproduction on a different substrate will not match absolute numbers;
what must hold is the *shape*: who wins, by roughly what factor, and where
trends bend.  These helpers compute the derived quantities the paper
reports (percent reductions, speedup factors) and render side-by-side
comparisons for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.tables import format_table


def reduction_pct(baseline: float, improved: float) -> float:
    """Percent reduction of ``improved`` relative to ``baseline``."""
    if baseline == 0:
        return 0.0
    return (1.0 - improved / baseline) * 100.0


def improvement_pct(baseline: float, improved: float) -> float:
    """Percent increase of ``improved`` over ``baseline``."""
    if baseline == 0:
        return 0.0
    return (improved / baseline - 1.0) * 100.0


def speedup(baseline: float, improved: float) -> float:
    """How many times larger ``baseline`` is than ``improved``."""
    if improved == 0:
        return float("inf")
    return baseline / improved


@dataclass
class Claim:
    """One paper claim with the measured counterpart."""

    figure: str
    metric: str
    paper_value: float
    measured_value: float
    unit: str = "%"
    note: str = ""

    @property
    def same_direction(self) -> bool:
        """True when the measured value agrees in sign with the paper's."""
        if self.paper_value == 0:
            return self.measured_value == 0
        return (self.paper_value > 0) == (self.measured_value > 0)

    @property
    def within_factor_two(self) -> bool:
        """Loose magnitude agreement: within 2x of the paper's value."""
        if not self.same_direction or self.paper_value == 0:
            return False
        ratio = abs(self.measured_value) / abs(self.paper_value)
        return 0.5 <= ratio <= 2.0


def claims_table(claims: Sequence[Claim], title: str = "") -> str:
    """Render a paper-vs-measured table."""
    rows = [[c.figure, c.metric, c.paper_value, c.measured_value, c.unit,
             "yes" if c.same_direction else "NO", c.note]
            for c in claims]
    return format_table(
        ["figure", "metric", "paper", "measured", "unit", "same dir", "note"],
        rows, title=title)


def monotonic(values: Sequence[float], increasing: bool = True,
              tolerance: float = 0.0) -> bool:
    """Check a series trends in one direction (with slack for noise)."""
    for previous, current in zip(values, values[1:]):
        if increasing and current < previous - tolerance:
            return False
        if not increasing and current > previous + tolerance:
            return False
    return True


def ordering_holds(by_config: dict, order: Sequence[str],
                   larger_first: bool = True,
                   slack: float = 1.0) -> Optional[str]:
    """Verify configs rank in the expected order; None when they do.

    ``slack`` > 1 tolerates small inversions (e.g. 1.05 allows 5 %).
    Returns a description of the first violated pair otherwise.
    """
    for first, second in zip(order, order[1:]):
        a, b = by_config[first], by_config[second]
        ok = a * slack >= b if larger_first else a <= b * slack
        if not ok:
            relation = ">=" if larger_first else "<="
            return f"{first} ({a:.3g}) !{relation} {second} ({b:.3g})"
    return None
