"""Machine-readable export of experiment results.

Every ``Fig*Result`` dataclass can be serialised with :func:`to_jsonable`
(dataclasses, dicts with tuple keys, and nested containers are all
flattened into plain JSON types), and :func:`save_json` writes it next to
the text tables so downstream tooling can plot without re-running.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any


def to_jsonable(value: Any) -> Any:
    """Convert a result object into JSON-serialisable plain data.

    Handles dataclasses, dicts (tuple keys become ``"a/b"`` strings),
    lists/tuples, and leaves scalars alone.  Non-serialisable leaves fall
    back to ``str``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: to_jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if isinstance(key, tuple):
                key = "/".join(str(part) for part in key)
            out[str(key)] = to_jsonable(item)
        return out
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    return str(value)


def save_json(result: Any, path: pathlib.Path) -> pathlib.Path:
    """Serialise ``result`` to ``path`` (creating parent dirs)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(result), indent=2,
                               sort_keys=True) + "\n")
    return path
