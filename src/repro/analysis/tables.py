"""Plain-text table rendering for experiment reports.

Benchmarks print the same rows/series the paper's figures plot; this is
the shared formatter so every experiment reports in one consistent style.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def format_cell(value: Any, float_format: str = ".2f") -> str:
    """Render one value: floats formatted, the rest via str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 float_format: str = ".2f", title: str = "") -> str:
    """Render an aligned ASCII table.

    Columns are sized to their widest cell; numbers are right-aligned,
    text left-aligned.
    """
    rendered: List[List[str]] = [
        [format_cell(value, float_format) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def align(cell: str, index: int, original: Any) -> str:
        if isinstance(original, (int, float)) and not isinstance(original, bool):
            return cell.rjust(widths[index])
        return cell.ljust(widths[index])

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for raw, row in zip(rows, rendered):
        lines.append("  ".join(align(cell, i, raw[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)
