"""Result analysis: tables, paper-vs-measured comparisons, shape checks."""

from repro.analysis.export import save_json, to_jsonable
from repro.analysis.compare import (
    Claim,
    claims_table,
    improvement_pct,
    monotonic,
    ordering_holds,
    reduction_pct,
    speedup,
)
from repro.analysis.tables import format_cell, format_table

__all__ = [
    "Claim",
    "claims_table",
    "improvement_pct",
    "monotonic",
    "ordering_holds",
    "reduction_pct",
    "speedup",
    "format_cell",
    "format_table",
    "save_json",
    "to_jsonable",
]
