"""Schema-versioned benchmark artifacts — the CI regression gate's input.

``repro bench`` serialises its headline metrics into a
``BENCH_<runstamp>.json`` at the repo root (or wherever ``--artifact``
points).  The file is self-describing:

* ``schema`` — ``repro-bench/v1``;
* ``runstamp`` — UTC wall time of the run (``YYYYmmddTHHMMSSZ``);
* ``commit`` — ``git rev-parse HEAD`` at run time (``"unknown"`` outside
  a checkout);
* ``config_hash`` — SHA-256 over the *sorted* bench parameters, so a
  baseline is only ever compared against a run of the identical
  configuration;
* ``bench`` — the parameters themselves (mode, workload, threads, …);
* ``metrics`` — the flat metric dict the gate diffs.

``benchmarks/regress.py`` loads a fresh artifact plus the committed
``BENCH_baseline.json`` and fails CI on per-metric tolerance drift.
The simulator is seed-deterministic, so the tolerances are headroom
against future intentional changes, not noise margins.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from typing import Any, Dict, Optional

BENCH_SCHEMA = "repro-bench/v1"

GATED_METRICS = (
    "throughput_qps",
    "latency_p50_us",
    "latency_p99_us",
    "waf",
    "redundant_units",
    "checkpoint_total_ms",
    "operations",
    "ops_per_sec",
    "ckpt_blame_p99_share",
    "knee_sustainable_ops",
    "rto_warm_replica_ns",
)
"""Metrics the regression gate tracks (regress.py assigns tolerances).

``knee_sustainable_ops`` is the open-loop headline: the highest offered
load (ops/s) the checkin mode sustains inside the knee experiment's
fixed p99 + shed SLO (see ``repro.experiments.knee.bench_knee_probe``).
It comes from its own compact sweep, not from the bench run itself, and
is attached via ``bench_artifact(..., extra_metrics=...)``.

``rto_warm_replica_ns`` gates failover: mean simulated time from a
primary power-cut to the promoted replica's first served read, over the
compact seeded kill campaign in
``repro.experiments.recovery_matrix.bench_rto_probe``.  Like the knee it
rides along via ``extra_metrics``.

``ops_per_sec`` is the odd one out: it measures the *simulator* (completed
operations per host wall-clock second), not the simulated system, so it is
the only gated metric that is noisy across machines.  Its tolerance in
``regress.py`` is correspondingly loose — it exists to catch order-of-
magnitude hot-path regressions, not percent-level drift."""


def git_commit(cwd: Optional[str] = None) -> str:
    """The checked-out commit hash, or ``"unknown"``."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], cwd=cwd,
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def config_hash(bench: Dict[str, Any]) -> str:
    """Stable SHA-256 over the bench parameters (sorted-key JSON)."""
    canon = json.dumps(bench, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def runstamp(now: Optional[float] = None) -> str:
    """UTC ``YYYYmmddTHHMMSSZ`` stamp used in the artifact filename."""
    return time.strftime("%Y%m%dT%H%M%SZ",
                         time.gmtime(time.time() if now is None else now))


def bench_metrics(result: Any) -> Dict[str, float]:
    """The gated metric dict of one finished :class:`RunResult`."""
    metrics = result.metrics
    p50 = metrics.latency_all.p(50.0)[50.0]
    gated = {
        "throughput_qps": metrics.throughput_qps(),
        "latency_p50_us": p50 / 1e3,
        "latency_p99_us": metrics.summary()["latency_p99_us"],
        "waf": metrics.waf(),
        "redundant_units": float(metrics.redundant_write_units()),
        "checkpoint_total_ms": sum(
            r.duration_ns for r in result.checkpoint_reports) / 1e6,
        "operations": float(metrics.operations),
        "ops_per_sec": float(result.ops_per_sec),
    }
    if getattr(result, "blame", None) is not None:
        # Checkpoint-attributable share of the >p99 tail (repro.obs):
        # how much of the worst requests' time the checkpoint-family
        # stages caused.  Only present on blamed runs — `repro bench`
        # always blames, so the committed baseline carries it.
        gated["ckpt_blame_p99_share"] = result.blame.ckpt_tail_share()
    return gated


def bench_artifact(result: Any, bench: Dict[str, Any],
                   stamp: Optional[str] = None,
                   extra_metrics: Optional[Dict[str, float]] = None
                   ) -> Dict[str, Any]:
    """Assemble the full artifact dict for one run.

    ``extra_metrics`` lets the caller attach gated metrics that come
    from companion sweeps rather than the bench run itself (the knee
    probe's ``knee_sustainable_ops``).  They never enter the config
    hash, which covers only the bench *parameters*.
    """
    metrics = bench_metrics(result)
    if extra_metrics:
        metrics.update(extra_metrics)
    return {
        "schema": BENCH_SCHEMA,
        "runstamp": stamp or runstamp(),
        "commit": git_commit(),
        "config_hash": config_hash(bench),
        "bench": dict(bench),
        "metrics": metrics,
    }


def write_bench_artifact(path: str, artifact: Dict[str, Any]) -> str:
    """Write one artifact as pretty JSON; returns ``path``."""
    from repro.common.jsonl import ensure_parent_dir
    with open(ensure_parent_dir(path), "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench_artifact(path: str) -> Dict[str, Any]:
    """Load and schema-check an artifact; raises ``ValueError`` on junk."""
    with open(path) as handle:
        artifact = json.load(handle)
    if artifact.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: schema {artifact.get('schema')!r} "
                         f"is not {BENCH_SCHEMA!r}")
    for key in ("config_hash", "bench", "metrics"):
        if key not in artifact:
            raise ValueError(f"{path}: missing {key!r}")
    return artifact
