"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an illegal state."""


class PowerLossError(SimulationError):
    """A simulated power cut terminated a process or device operation."""


class FlashError(ReproError):
    """Illegal NAND flash operation (e.g. programming a written page)."""


class FtlError(ReproError):
    """Illegal FTL operation or mapping-table inconsistency."""


class DeviceFullError(FtlError):
    """The device ran out of free blocks even after garbage collection."""


class CommandError(ReproError):
    """A malformed or unsupported device command."""


class NamespaceError(CommandError):
    """A command crossed or escaped its NVMe-style namespace range."""


class EngineError(ReproError):
    """Storage-engine level failure (journal, checkpoint, key mapping)."""


class KeyNotFoundError(EngineError):
    """A read/update referenced a key that was never inserted."""


class RecoveryError(EngineError):
    """Crash recovery could not reconstruct a consistent state."""


class WorkloadError(ReproError):
    """Invalid workload specification or generator state."""
