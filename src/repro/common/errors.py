"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an illegal state."""


class PowerLossError(SimulationError):
    """A simulated power cut terminated a process or device operation."""


class FlashError(ReproError):
    """Illegal NAND flash operation (e.g. programming a written page)."""


class MediaError(FlashError):
    """A NAND operation failed for media (charge/cell) reasons.

    Unlike the structural :class:`FlashError` cases, media errors are
    expected events the stack above must handle: relocate, retire, retry
    or surface a typed completion status — never crash a process.
    """


class MediaProgramError(MediaError):
    """Program-status failure: the page did not verify after tPROG."""


class MediaEraseError(MediaError):
    """Erase-status failure: the block did not erase cleanly."""


class MediaReadError(MediaError):
    """Uncorrectable read: every read-retry level exhausted ECC."""


class FtlError(ReproError):
    """Illegal FTL operation or mapping-table inconsistency."""


class DeviceFullError(FtlError):
    """The device ran out of free blocks even after garbage collection."""


class CommandError(ReproError):
    """A malformed or unsupported device command."""


class NamespaceError(CommandError):
    """A command crossed or escaped its NVMe-style namespace range."""


class EngineError(ReproError):
    """Storage-engine level failure (journal, checkpoint, key mapping)."""


class KeyNotFoundError(EngineError):
    """A read/update referenced a key that was never inserted."""


class RecoveryError(EngineError):
    """Crash recovery could not reconstruct a consistent state."""


class CheckpointMediaError(EngineError):
    """A checkpoint was abandoned because the device reported media
    errors past the retry budget (or dropped to read-only mid-run)."""


class WorkloadError(ReproError):
    """Invalid workload specification or generator state."""


class ReplicationError(ReproError):
    """Replication-layer failure (snapshot export, shipping, promote)."""


class SnapshotFrameError(ReplicationError):
    """A snapshot or journal-shipping frame failed validation.

    Typed so a replica can *refuse* a bad stream and re-fetch instead of
    applying silently-corrupt state.  The two concrete cases:
    """


class TruncatedFrameError(SnapshotFrameError):
    """The stream ended mid-frame (or a frame was cut short)."""


class CorruptFrameError(SnapshotFrameError):
    """A frame's checksum, magic, version or sequencing did not verify."""
