"""Shared JSONL dump plumbing for the observability exporters.

Every observability plane (telemetry, blame, incident) dumps the same
shape of file: one self-describing JSON object per line, a ``header``
record carrying a ``schema`` version string, typed body records, and a
``footer`` with per-type counts so truncation is detectable.  The three
exporters used to each carry a copy-pasted read/validate skeleton; this
module is the single implementation they now share:

* :func:`write_jsonl` — dump records, creating missing parent
  directories (every CLI ``--out`` goes through it or
  :func:`ensure_parent_dir`);
* :func:`read_jsonl` — the tolerant line-by-line reader, accumulating
  per-line problems instead of aborting;
* :func:`load_jsonl` — the strict reader used programmatically: raises
  :class:`UnknownSchemaError` when the header's schema version is not
  the expected one;
* :func:`validate_jsonl_file` — the common validation skeleton
  (header/schema, required keys per type, footer count reconciliation)
  with a per-format callback for domain checks.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ReproError


class UnknownSchemaError(ReproError):
    """A JSONL dump declares a schema version this build cannot read."""

    def __init__(self, found: Any, expected: str, path: str = "") -> None:
        self.found = found
        self.expected = expected
        self.path = path
        where = f" in {path}" if path else ""
        super().__init__(
            f"unknown schema {found!r}{where} (expected {expected!r})")


def ensure_parent_dir(path: str) -> str:
    """Create ``path``'s parent directory if missing; returns ``path``.

    Every CLI ``--out`` destination goes through this so that
    ``--out artifacts/run1/dump.jsonl`` works without a prior ``mkdir``
    instead of failing with a raw :class:`FileNotFoundError`.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    return path


def write_jsonl(path: str, records: Sequence[Mapping[str, Any]]) -> int:
    """Write one JSON object per line to ``path``; returns the count."""
    with open(ensure_parent_dir(path), "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return len(records)


def read_jsonl(path: str) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Tolerant JSONL reader: ``(records, problems)``.

    Unreadable files and undecodable lines become problem strings, never
    exceptions — validators report, they do not crash.
    """
    problems: List[str] = []
    records: List[Dict[str, Any]] = []
    try:
        with open(path) as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    problems.append(f"line {lineno}: invalid JSON ({exc})")
    except OSError as exc:
        return [], [f"cannot read {path}: {exc}"]
    return records, problems


def read_json(path: str) -> Tuple[Any, List[str]]:
    """Tolerant whole-file JSON reader: ``(document, problems)``.

    The single-document sibling of :func:`read_jsonl`, for the trace
    export (Chrome trace JSON is one object, not JSONL) — load failures
    become problem strings so validators report instead of crashing.
    """
    try:
        with open(path) as handle:
            return json.load(handle), []
    except (OSError, ValueError) as exc:
        return None, [f"cannot load {path}: {exc}"]


def load_jsonl(path: str, schema: str) -> List[Dict[str, Any]]:
    """Strict loader: records of a dump whose header matches ``schema``.

    Raises :class:`UnknownSchemaError` for a missing or mismatched
    schema version and :class:`ReproError` for unreadable input, so
    programmatic consumers (timeline reconstruction, report renderers)
    fail with a typed error instead of mis-parsing a foreign dump.
    """
    records, problems = read_jsonl(path)
    if problems:
        raise ReproError(f"{path}: {problems[0]}")
    if not records:
        raise ReproError(f"{path}: empty dump")
    header = records[0]
    if header.get("type") != "header" or header.get("schema") != schema:
        raise UnknownSchemaError(header.get("schema"), schema, path)
    return records


# Domain-check callback: (index, record, header, problems) -> None.
RecordCheck = Callable[[int, Dict[str, Any], Dict[str, Any], List[str]],
                       None]


def validate_jsonl_file(
        path: str,
        *,
        schema: str,
        required: Mapping[str, Sequence[str]],
        counted: Mapping[str, str],
        what: str,
        tolerated: Sequence[str] = (),
        record_check: Optional[RecordCheck] = None) -> List[str]:
    """The shared structural validation skeleton; returns problems found.

    ``required`` maps record type to its required keys; ``counted`` maps
    a body record type to the footer key claiming its count; ``what``
    names the format in messages ("blame", "telemetry", ...);
    ``tolerated`` lists extra known types with no required-key contract;
    ``record_check`` adds per-format domain checks (conservation,
    monotonicity, span links).
    """
    records, problems = read_jsonl(path)
    if not records:
        return problems or [f"empty {what} file"]

    header = records[0]
    if header.get("type") != "header":
        problems.append("first record is not a header")
    elif header.get("schema") != schema:
        problems.append(f"schema {header.get('schema')!r} != {schema!r}")
    if records[-1].get("type") != "footer":
        problems.append("last record is not a footer")

    counts = {kind: 0 for kind in counted}
    for index, record in enumerate(records):
        kind = record.get("type")
        keys = required.get(kind)
        if keys is None:
            if kind not in ("header", "footer") and kind not in tolerated:
                problems.append(f"record {index}: unknown type {kind!r}")
            continue
        for key in keys:
            if key not in record:
                problems.append(f"record {index} ({kind}): missing {key!r}")
        if kind in counts:
            counts[kind] += 1
        if record_check is not None:
            record_check(index, record, header, problems)

    footer = records[-1]
    if footer.get("type") == "footer":
        for kind, footer_key in counted.items():
            claimed = footer.get(footer_key)
            if claimed is not None and claimed != counts[kind]:
                problems.append(
                    f"footer claims {claimed} {kind} records, "
                    f"found {counts[kind]}")
    return problems
