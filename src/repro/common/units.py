"""Size and time unit constants plus small conversion helpers.

Every quantity in the simulator is an integer: sizes in bytes, times in
nanoseconds.  Using integers keeps the discrete-event simulation exactly
reproducible (no floating-point drift in event ordering).
"""

from __future__ import annotations

# --- sizes (bytes) ---------------------------------------------------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

SECTOR_SIZE = 512
"""The host logical-block (sector) size used throughout the paper."""

# --- times (nanoseconds) ---------------------------------------------------
NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative operands."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"dividend must be non-negative, got {a}")
    return -(-a // b)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    return ceil_div(value, multiple) * multiple


def round_down(value: int, multiple: int) -> int:
    """Round ``value`` down to the nearest multiple of ``multiple``."""
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return (value // multiple) * multiple


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def transfer_time_ns(num_bytes: int, bandwidth_bytes_per_sec: int) -> int:
    """Time to move ``num_bytes`` at the given bandwidth, in whole ns.

    Rounds up so a transfer never takes zero time.
    """
    if bandwidth_bytes_per_sec <= 0:
        raise ValueError("bandwidth must be positive")
    if num_bytes < 0:
        raise ValueError("byte count must be non-negative")
    if num_bytes == 0:
        return 0
    return max(1, ceil_div(num_bytes * SEC, bandwidth_bytes_per_sec))


def format_bytes(num_bytes: int) -> str:
    """Human-readable byte count, e.g. ``'4.0 KiB'``."""
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_time(ns: int) -> str:
    """Human-readable duration, e.g. ``'1.50 ms'``."""
    if ns < US:
        return f"{ns} ns"
    if ns < MS:
        return f"{ns / US:.2f} us"
    if ns < SEC:
        return f"{ns / MS:.2f} ms"
    return f"{ns / SEC:.3f} s"


def parse_duration_ns(text: str) -> int:
    """Parse ``'10ms'`` / ``'500us'`` / ``'1s'`` / ``'250000'`` (ns) to ns."""
    text = text.strip().lower()
    for suffix, scale in (("ns", NS), ("us", US), ("ms", MS), ("s", SEC)):
        if text.endswith(suffix):
            number = text[:-len(suffix)].strip()
            break
    else:
        number, scale = text, NS
    try:
        value = float(number)
    except ValueError:
        raise ValueError(f"cannot parse duration {text!r}") from None
    if value <= 0:
        raise ValueError(f"duration must be positive, got {text!r}")
    return max(1, int(value * scale))
