"""Deterministic random number generation.

Every stochastic component takes a :class:`SeededRng` (or derives one via
:meth:`SeededRng.fork`) so whole-system runs are reproducible from a single
root seed, and components do not perturb each other's streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A named, seeded random stream.

    Wraps :class:`random.Random` with a stable fork mechanism: forking with
    a name produces a child stream whose seed depends only on the parent
    seed and the name, not on how many values the parent already produced.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._random = random.Random(seed)

    def fork(self, name: str) -> "SeededRng":
        """Create an independent child stream identified by ``name``.

        Uses a stable hash (not Python's randomised ``hash()``) so forked
        seeds are identical across processes and machines.
        """
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF
        return SeededRng(child_seed, f"{self.name}/{name}")

    # -- thin delegation -----------------------------------------------
    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element."""
        return self._random.choice(items)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed sample with the given rate."""
        return self._random.expovariate(rate)

    def bytes(self, n: int) -> bytes:
        """``n`` pseudo-random bytes (used for record payloads)."""
        return self._random.getrandbits(8 * n).to_bytes(n, "little") if n else b""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeededRng(seed={self.seed}, name={self.name!r})"
