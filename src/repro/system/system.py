"""The full key-value store system: device + engine + clients + triggers.

:class:`KvSystem` wires one configuration end to end and drives a run:

1. load the key population (instant, outside the measured phase);
2. start services (journal committer, device idle-GC daemon);
3. spawn the client pool and the checkpoint-trigger process;
4. run the event loop until the operation budget drains;
5. optionally run a final checkpoint, quiesce the device, stop daemons.

The checkpoint trigger mirrors the paper's policy: a checkpoint fires on a
time interval *or* when the journal quota fills, whichever comes first
(§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.common.errors import SimulationError
from repro.common.rng import SeededRng
from repro.engine.checkpointer import CheckpointReport
from repro.engine.engine import StorageEngine
from repro.sim.core import Simulator
from repro.sim.process import Interrupt, Process, spawn
from repro.ssd.ssd import Ssd
from repro.system.config import SystemConfig
from repro.system.metrics import RunMetrics
from repro.trace import install_tracer, summarize, tracing_enabled
from repro.trace.metrics import TraceSummary
from repro.workload.client import ClientPool
from repro.workload.distributions import make_distribution
from repro.workload.ycsb import OperationGenerator, workload_by_name


@dataclass
class RunResult:
    """Everything a finished run produced."""

    config: SystemConfig
    metrics: RunMetrics
    checkpoint_reports: List[CheckpointReport] = field(default_factory=list)
    trace_summary: Optional[TraceSummary] = None
    """Per-component stage and checkpoint-phase breakdown; None when the
    run was untraced."""

    @property
    def checkpoint_count(self) -> int:
        """Checkpoints taken during the run."""
        return len(self.checkpoint_reports)

    def mean_checkpoint_ns(self) -> float:
        """Average checkpoint duration (0.0 when none ran)."""
        if not self.checkpoint_reports:
            return 0.0
        return sum(r.duration_ns for r in self.checkpoint_reports) / \
            len(self.checkpoint_reports)


class KvSystem:
    """One configured key-value store system instance."""

    def __init__(self, config: SystemConfig) -> None:
        config.check_capacity()
        self.config = config
        self.sim = Simulator()
        if config.trace or tracing_enabled():
            install_tracer(self.sim, label=config.mode)
        self.ssd = Ssd(self.sim, config.ssd_spec())
        self.engine = StorageEngine(self.sim, self.ssd, config.engine_config())
        self.metrics = RunMetrics(self.sim, self.ssd.stats)
        self.size_model = config.size_model()
        self._loaded = False
        self._trigger: Optional[Process] = None

    # ------------------------------------------------------------------
    def load(self) -> None:
        """Populate the store with the key population (instant)."""
        if self._loaded:
            return
        self.engine.load(self.size_model.sizes(self.config.num_keys))
        self._loaded = True

    def make_client_pool(self) -> ClientPool:
        """Build the closed-loop client pool for this configuration."""
        root = SeededRng(self.config.seed)
        spec = workload_by_name(self.config.workload)
        generators = []
        for thread in range(self.config.threads):
            thread_rng = root.fork(f"thread{thread}")
            keys = make_distribution(self.config.distribution,
                                     self.config.num_keys,
                                     thread_rng.fork("keys"))
            generators.append(OperationGenerator(spec, keys,
                                                 thread_rng.fork("ops")))
        return ClientPool(self.sim, self.engine, generators,
                          self.config.total_queries,
                          on_complete=self.metrics.record)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the whole experiment; returns the results."""
        self.load()
        self.engine.start()
        self.metrics.start_measurement()

        pool_done = self.make_client_pool().start()
        self._trigger = spawn(self.sim, self._checkpoint_trigger(),
                              name="ckpt-trigger")

        self._drive_until(pool_done)

        # Let an in-flight checkpoint finish before tearing anything down.
        while self.engine.checkpoint_running:
            if not self.sim.step():
                raise SimulationError("event loop drained mid-checkpoint")

        if self.config.final_checkpoint and len(self.engine.journal.active_jmt):
            final = spawn(self.sim, self.engine.checkpoint(), name="final-ckpt")
            self._drive_until(final)

        quiesced = spawn(self.sim, self.ssd.quiesce(), name="quiesce")
        self._drive_until(quiesced)

        self.metrics.finish_measurement()
        self._stop_services()
        self.sim.run()  # drain whatever remains (completions, programs)
        tracer = self.sim.tracer
        return RunResult(config=self.config, metrics=self.metrics,
                         checkpoint_reports=list(self.engine.checkpoint_reports),
                         trace_summary=summarize(tracer)
                         if tracer.enabled else None)

    def checkpoint_now(self) -> Optional[CheckpointReport]:
        """Synchronously run one checkpoint (helper for experiments)."""
        proc = spawn(self.sim, self.engine.checkpoint(), name="manual-ckpt")
        self._drive_until(proc)
        return proc.value

    def _drive_until(self, process: Process) -> None:
        while not process.triggered:
            if not self.sim.step():
                raise SimulationError(
                    f"event loop drained while waiting for {process.name}")
        if not process.ok:
            raise process.exception

    def _stop_services(self) -> None:
        if self._trigger is not None and self._trigger.alive:
            self._trigger.interrupt("run finished")
        self._trigger = None
        self.engine.shutdown()

    # ------------------------------------------------------------------
    def _checkpoint_trigger(self) -> Generator[Any, Any, None]:
        last_checkpoint = self.sim.now
        try:
            while True:
                yield self.config.trigger_poll_ns
                if self.engine.checkpoint_running:
                    continue
                if len(self.engine.journal.active_jmt) == 0:
                    continue
                interval_due = (self.sim.now - last_checkpoint >=
                                self.config.checkpoint_interval_ns)
                quota_due = (self.engine.journal_pressure() >=
                             self.config.checkpoint_journal_quota)
                if not (interval_due or quota_due):
                    continue
                yield from self.engine.checkpoint()
                last_checkpoint = self.sim.now
        except Interrupt:
            return


def run_config(config: SystemConfig) -> RunResult:
    """Build, run and tear down one system; the main experiment entry."""
    return KvSystem(config).run()
