"""The full key-value store system: device + engine(s) + clients + triggers.

:class:`KvSystem` wires one configuration end to end and drives a run:

1. load the key population (instant, outside the measured phase);
2. start services (journal committer, device idle-GC daemon);
3. spawn the client pools and the checkpoint-trigger processes;
4. run the event loop until every operation budget drains;
5. optionally run final checkpoints, quiesce the device, stop daemons.

The checkpoint trigger mirrors the paper's policy: a checkpoint fires on a
time interval *or* when the journal quota fills, whichever comes first
(§IV-C).

Multi-tenant runs (``config.tenants``) shard the device into NVMe-style
namespaces: each tenant gets its own engine, journal, checkpointer,
client pool and RNG lineage on a private LBA range, while the controller,
FTL, GC and ISCE stay shared.  A single-tenant config takes the legacy
path and is bit-identical to the pre-namespace system.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Union

from repro.common.errors import SimulationError
from repro.common.rng import SeededRng
from repro.engine.admission import AdmissionController, AdmissionReport
from repro.engine.checkpointer import CheckpointReport
from repro.engine.engine import StorageEngine
from repro.obs import blame_enabled, register_blame
from repro.obs.blame import BlameCollector, BlameRunReport
from repro.obs.flightrec import (
    FlightRecorder,
    flightrec_capacity,
    flightrec_enabled,
)
from repro.sim.core import Simulator
from repro.sim.process import Interrupt, Process, spawn
from repro.ssd.ssd import Ssd
from repro.system.config import SystemConfig
from repro.system.metrics import RunMetrics
from repro.telemetry import (
    build_sampler,
    global_telemetry_config,
    register_sampler,
    telemetry_enabled,
)
from repro.telemetry.sampler import TelemetryConfig, TelemetrySampler
from repro.trace import install_tracer, summarize, tracing_enabled
from repro.trace.metrics import TraceSummary
from repro.workload.arrivals import arrival_times
from repro.workload.client import (
    ClientPool,
    LatencySink,
    OpenLoopClientPool,
)
from repro.workload.distributions import make_distribution
from repro.workload.records import RecordSizeModel
from repro.workload.ycsb import OperationGenerator, workload_by_name


@dataclass
class TenantRuntime:
    """One tenant's live components inside a :class:`KvSystem`."""

    index: int
    name: str
    view: SystemConfig
    """The tenant's effective single-tenant configuration."""

    engine: StorageEngine
    metrics: RunMetrics
    size_model: RecordSizeModel
    sink: LatencySink
    blame: Optional[BlameCollector] = None
    """Per-tenant blame collector; None when attribution is off."""

    admission: Optional[AdmissionController] = None
    """Front-door controller; None when the tenant has no front door."""


@dataclass
class TenantResult:
    """Per-tenant slice of a finished multi-tenant run."""

    name: str
    config: SystemConfig
    metrics: RunMetrics
    checkpoint_reports: List[CheckpointReport] = field(default_factory=list)
    admission: Optional[AdmissionReport] = None
    """Front-door reconciliation snapshot; None without a controller."""

    @property
    def operations(self) -> int:
        """Operations this tenant completed in the measured phase."""
        return self.metrics.operations


@dataclass
class RunResult:
    """Everything a finished run produced."""

    config: SystemConfig
    metrics: RunMetrics
    checkpoint_reports: List[CheckpointReport] = field(default_factory=list)
    trace_summary: Optional[TraceSummary] = None
    """Per-component stage and checkpoint-phase breakdown; None when the
    run was untraced."""

    telemetry: Optional[TelemetrySampler] = None
    """The run's telemetry sampler (series, watchdog events, health log);
    None when telemetry was off."""

    tenants: List[TenantResult] = field(default_factory=list)
    """Per-tenant results; a single entry mirroring the aggregate on a
    classic single-tenant run."""

    blame: Optional[BlameRunReport] = None
    """Per-tenant latency attribution (blame ledgers); None when the
    run was unblamed."""

    flightrec: Optional[FlightRecorder] = None
    """The run's black-box flight recorder (event ring + incident
    triggers); None when the recorder was unarmed."""

    wall_seconds: float = 0.0
    """Host wall-clock time :meth:`KvSystem.run` took — the simulator
    speed measurement behind the bench artifact's ``ops_per_sec``."""

    @property
    def ops_per_sec(self) -> float:
        """Completed operations per host wall-clock second (0 if untimed)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.metrics.operations / self.wall_seconds

    @property
    def checkpoint_count(self) -> int:
        """Checkpoints taken during the run."""
        return len(self.checkpoint_reports)

    def mean_checkpoint_ns(self) -> float:
        """Average checkpoint duration (0.0 when none ran)."""
        if not self.checkpoint_reports:
            return 0.0
        return sum(r.duration_ns for r in self.checkpoint_reports) / \
            len(self.checkpoint_reports)

    def tenant(self, name: str) -> TenantResult:
        """The tenant result named ``name``."""
        for entry in self.tenants:
            if entry.name == name:
                return entry
        raise KeyError(f"no tenant named {name!r}")

    @property
    def admission(self) -> Optional[AdmissionReport]:
        """Tenant 0's front-door report (the aggregate on single-tenant
        runs); None when no admission controller was in force."""
        return self.tenants[0].admission if self.tenants else None


class KvSystem:
    """One configured key-value store system instance."""

    def __init__(self, config: SystemConfig) -> None:
        config.check_capacity()
        self.config = config
        self.sim = Simulator()
        if config.trace or tracing_enabled():
            install_tracer(self.sim, label=config.mode)
        self.flightrec: Optional[FlightRecorder] = None
        if config.flightrec or flightrec_enabled():
            self.flightrec = FlightRecorder(flightrec_capacity())
            self.sim.flightrec = self.flightrec
        self.ssd = Ssd(self.sim, config.ssd_spec())
        self.metrics = RunMetrics(self.sim, self.ssd.stats)
        self.tenants: List[TenantRuntime] = []
        if config.tenants is None:
            engine = StorageEngine(self.sim, self.ssd, config.engine_config())
            # The single runtime *is* the aggregate: one metrics object,
            # recorded once per operation — the legacy behaviour.
            self.tenants.append(TenantRuntime(
                index=0, name="tenant0", view=config, engine=engine,
                metrics=self.metrics, size_model=config.size_model(),
                sink=self.metrics.record))
        else:
            layout = config.namespace_layout()
            self.ssd.configure_namespaces(layout)
            if len(layout) > 1:
                # Split the stripe between namespaces so N tenants' worth
                # of qualified streams cannot starve the free-block pool.
                allocator = self.ssd.ftl.allocator
                allocator.limit_stripe_width(
                    max(1, allocator.stripe_width // len(layout)))
            for index, spec in enumerate(config.tenants):
                view = config.tenant_view(index)
                engine = StorageEngine(self.sim, self.ssd.namespace(index),
                                       config.tenant_engine_config(index))
                metrics = RunMetrics(self.sim, self.ssd.stats)
                self.tenants.append(TenantRuntime(
                    index=index, name=spec.label(index), view=view,
                    engine=engine, metrics=metrics,
                    size_model=view.size_model(),
                    sink=self._tenant_sink(metrics)))
        for tenant in self.tenants:
            admission_cfg = tenant.view.effective_admission()
            if admission_cfg is not None:
                tenant.admission = AdmissionController(
                    self.sim, admission_cfg, label=tenant.name)
        self.engine = self.tenants[0].engine
        """Tenant 0's engine — the whole system's engine on the legacy
        single-tenant path (kept as an attribute for compatibility)."""
        self.size_model = self.tenants[0].size_model
        self.blame_report: Optional[BlameRunReport] = None
        if config.blame or blame_enabled():
            for tenant in self.tenants:
                tenant.blame = BlameCollector(tenant.name)
            self.blame_report = register_blame(
                config.mode,
                [(tenant.name, tenant.blame) for tenant in self.tenants])
        self.telemetry: Optional[TelemetrySampler] = None
        if config.telemetry is not None or telemetry_enabled():
            telemetry_config = (config.telemetry or
                                global_telemetry_config() or
                                TelemetryConfig())
            self.telemetry = build_sampler(self, telemetry_config,
                                           label=config.mode)
            register_sampler(config.mode, self.telemetry)
            if self.blame_report is not None:
                # SLO-watchdog events get stamped with the dominant blame
                # category observed so far — "the SLO broke, and here is
                # the stage that is eating the time".
                report = self.blame_report
                self.telemetry.watchdogs.blame_annotator = \
                    lambda: report.aggregate().dominant_category()
        self._loaded = False
        self._triggers: List[Process] = []

    def _tenant_sink(self, metrics: RunMetrics) -> LatencySink:
        def record(operation, latency_ns, during_checkpoint) -> None:
            metrics.record(operation, latency_ns, during_checkpoint)
            self.metrics.record(operation, latency_ns, during_checkpoint)
        return record

    # ------------------------------------------------------------------
    def load(self) -> None:
        """Populate every tenant's key population (instant)."""
        if self._loaded:
            return
        for tenant in self.tenants:
            tenant.engine.load(
                tenant.size_model.sizes(tenant.view.num_keys))
        self._loaded = True

    def make_client_pool(self, tenant: Optional[TenantRuntime] = None
                         ) -> Union[ClientPool, OpenLoopClientPool]:
        """Build the client pool for one tenant (default: 0).

        Closed-loop YCSB threads by default; an :class:`ArrivalSpec` on
        the tenant's view swaps in an open-loop dispatcher.  The RNG
        lineages of the two paths are disjoint forks of the same root, so
        enabling arrivals never perturbs a closed-loop run's streams.
        """
        if tenant is None:
            tenant = self.tenants[0]
        view = tenant.view
        root = SeededRng(view.seed)
        spec = workload_by_name(view.workload)
        label = tenant.name if self.config.tenants is not None else ""
        if view.arrivals is not None:
            open_rng = root.fork("open-loop")
            keys = make_distribution(view.distribution, view.num_keys,
                                     open_rng.fork("keys"))
            generator = OperationGenerator(spec, keys,
                                           open_rng.fork("ops"))
            times = arrival_times(view.arrivals, root.fork("arrivals"),
                                  view.total_queries)
            return OpenLoopClientPool(self.sim, tenant.engine, generator,
                                      times, admission=tenant.admission,
                                      on_complete=tenant.sink, label=label,
                                      blame=tenant.blame)
        generators = []
        for thread in range(view.threads):
            thread_rng = root.fork(f"thread{thread}")
            keys = make_distribution(view.distribution,
                                     view.num_keys,
                                     thread_rng.fork("keys"))
            generators.append(OperationGenerator(spec, keys,
                                                 thread_rng.fork("ops")))
        return ClientPool(self.sim, tenant.engine, generators,
                          view.total_queries,
                          on_complete=tenant.sink, label=label,
                          blame=tenant.blame, admission=tenant.admission)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the whole experiment; returns the results."""
        wall_started = time.perf_counter()
        self.load()
        for tenant in self.tenants:
            tenant.engine.start()
        if self.telemetry is not None:
            self.telemetry.start()
        self.metrics.start_measurement()
        if self.config.tenants is not None:
            for tenant in self.tenants:
                tenant.metrics.start_measurement()

        pool_done = [self.make_client_pool(tenant).start()
                     for tenant in self.tenants]
        for tenant in self.tenants:
            suffix = f"{tenant.name}." if self.config.tenants is not None \
                else ""
            self._triggers.append(
                spawn(self.sim, self._checkpoint_trigger(tenant),
                      name=f"{suffix}ckpt-trigger"))

        for done in pool_done:
            self._drive_until(done)

        # Let in-flight checkpoints finish before tearing anything down.
        while any(tenant.engine.checkpoint_running
                  for tenant in self.tenants):
            if not self.sim.step():
                raise SimulationError("event loop drained mid-checkpoint")

        for tenant in self.tenants:
            if tenant.view.final_checkpoint and \
                    not tenant.engine.degraded and \
                    len(tenant.engine.journal.active_jmt):
                final = spawn(self.sim, tenant.engine.checkpoint(),
                              name=f"final-ckpt{tenant.index}")
                self._drive_until(final)

        quiesced = spawn(self.sim, self.ssd.quiesce(), name="quiesce")
        self._drive_until(quiesced)

        self.metrics.finish_measurement()
        if self.config.tenants is not None:
            for tenant in self.tenants:
                tenant.metrics.finish_measurement()
        self._stop_services()
        self.sim.run()  # drain whatever remains (completions, programs)
        self.metrics.capture_device_state(self.ssd)
        if self.config.tenants is not None:
            for tenant in self.tenants:
                tenant.metrics.capture_device_state(self.ssd)
        tracer = self.sim.tracer
        all_reports: List[CheckpointReport] = []
        tenant_results: List[TenantResult] = []
        for tenant in self.tenants:
            reports = list(tenant.engine.checkpoint_reports)
            all_reports.extend(reports)
            tenant_results.append(TenantResult(
                name=tenant.name, config=tenant.view,
                metrics=tenant.metrics, checkpoint_reports=reports,
                admission=tenant.admission.report(tenant.name)
                if tenant.admission is not None else None))
        return RunResult(config=self.config, metrics=self.metrics,
                         checkpoint_reports=all_reports,
                         trace_summary=summarize(tracer)
                         if tracer.enabled else None,
                         telemetry=self.telemetry,
                         tenants=tenant_results,
                         blame=self.blame_report,
                         flightrec=self.flightrec,
                         wall_seconds=time.perf_counter() - wall_started)

    def checkpoint_now(self) -> Optional[CheckpointReport]:
        """Synchronously run one checkpoint (helper for experiments)."""
        proc = spawn(self.sim, self.engine.checkpoint(), name="manual-ckpt")
        self._drive_until(proc)
        return proc.value

    def _drive_until(self, process: Process) -> None:
        self.sim.run_until_triggered(process, name=process.name)
        if not process.ok:
            raise process.exception

    def _stop_services(self) -> None:
        if self.telemetry is not None:
            self.telemetry.sample_once()  # closing sample at teardown time
            self.telemetry.stop()
        for trigger in self._triggers:
            if trigger.alive:
                trigger.interrupt("run finished")
        self._triggers = []
        for tenant in self.tenants:
            tenant.engine.shutdown()

    # ------------------------------------------------------------------
    def _checkpoint_trigger(self, tenant: TenantRuntime
                            ) -> Generator[Any, Any, None]:
        view = tenant.view
        engine = tenant.engine
        last_checkpoint = self.sim.now
        try:
            while True:
                yield view.trigger_poll_ns
                if engine.checkpoint_running or engine.degraded:
                    continue
                if len(engine.journal.active_jmt) == 0:
                    continue
                interval_due = (self.sim.now - last_checkpoint >=
                                view.checkpoint_interval_ns)
                quota_due = (engine.journal_pressure() >=
                             view.checkpoint_journal_quota)
                if not (interval_due or quota_due):
                    continue
                yield from engine.checkpoint()
                last_checkpoint = self.sim.now
        except Interrupt:
            return


def run_config(config: SystemConfig) -> RunResult:
    """Build, run and tear down one system; the main experiment entry."""
    return KvSystem(config).run()
