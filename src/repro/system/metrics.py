"""Run-level metric collection.

One :class:`RunMetrics` instance watches a measured phase: it snapshots
the device counters at start and end (so load-phase traffic is excluded),
collects per-query latencies split by operation kind and by
checkpoint-overlap, and derives every quantity the paper's figures plot —
I/O amplification, flash-operation amplification, redundant writes, GC
counts, lifetime (Equation 1), throughput and tail latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.units import SEC
from repro.sim.core import Simulator
from repro.sim.stats import LatencySample, StatRegistry
from repro.telemetry import names
from repro.telemetry.names import safe_ratio
from repro.workload.ycsb import Operation, OpKind

__all__ = ["LifetimeEstimate", "RunMetrics", "safe_ratio"]
# safe_ratio is re-exported here as the canonical import site for metric
# consumers (experiments, analysis, trace); it lives in the leaf module
# repro.telemetry.names so the telemetry package can use it too.


@dataclass
class LifetimeEstimate:
    """Equation (1): Lifetime_block = PEC_max * T_op / BEC."""

    max_pe_cycles: int
    operation_time_ns: int
    block_erase_count: int

    @property
    def relative_lifetime(self) -> float:
        """Lifetime in units of T_op; infinite when nothing was erased."""
        return safe_ratio(self.max_pe_cycles * self.operation_time_ns,
                          self.block_erase_count, default=float("inf"))


class RunMetrics:
    """Measurements for one run's measured phase."""

    def __init__(self, sim: Simulator, stats: StatRegistry) -> None:
        self.sim = sim
        self.stats = stats
        self.latency_all = LatencySample("all")
        self.latency_read = LatencySample("read")
        self.latency_update = LatencySample("update")
        self.latency_read_ckpt = LatencySample("read-during-ckpt")
        self.latency_update_ckpt = LatencySample("update-during-ckpt")
        self.latency_read_normal = LatencySample("read-normal")
        self.latency_update_normal = LatencySample("update-normal")
        self.operations = 0
        self._start_ns: Optional[int] = None
        self._end_ns: Optional[int] = None
        self._start_counts: Dict[str, int] = {}
        self._start_bytes: Dict[str, int] = {}
        self._end_counts: Dict[str, int] = {}
        self._end_bytes: Dict[str, int] = {}
        self.erase_min = 0.0
        self.erase_max = 0.0
        self.erase_mean = 0.0
        self.bad_blocks = 0
        self.device_degraded = False
        self.degraded_reason = ""

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start_measurement(self) -> None:
        """Snapshot counters; everything before this is warm-up/load."""
        self._start_ns = self.sim.now
        self._start_counts = self.stats.snapshot()
        self._start_bytes = self.stats.snapshot_bytes()

    def finish_measurement(self) -> None:
        """Close the measured phase."""
        self._end_ns = self.sim.now
        self._end_counts = self.stats.snapshot()
        self._end_bytes = self.stats.snapshot_bytes()

    def capture_device_state(self, ssd: object) -> None:
        """Record end-of-run device health: wear spread, grown-bad blocks
        and whether the device (or its FTL) dropped to degraded mode."""
        wear = ssd.array.wear_stats()
        self.erase_min = wear["min"]
        self.erase_max = wear["max"]
        self.erase_mean = wear["mean"]
        self.bad_blocks = len(ssd.ftl.grown_bad)
        self.device_degraded = bool(ssd.ftl.read_only)
        self.degraded_reason = ssd.ftl.degraded_reason

    def record(self, operation: Operation, latency_ns: int,
               during_checkpoint: bool) -> None:
        """Account one completed client operation."""
        self.operations += 1
        self.latency_all.record(latency_ns)
        is_read = operation.kind is OpKind.READ
        if is_read:
            self.latency_read.record(latency_ns)
            (self.latency_read_ckpt if during_checkpoint
             else self.latency_read_normal).record(latency_ns)
        else:
            self.latency_update.record(latency_ns)
            (self.latency_update_ckpt if during_checkpoint
             else self.latency_update_normal).record(latency_ns)

    # ------------------------------------------------------------------
    # raw deltas
    # ------------------------------------------------------------------
    def delta(self, counter: str) -> int:
        """Measured-phase increase of a counter's count."""
        end = self._end_counts if self._end_counts else self.stats.snapshot()
        return end.get(counter, 0) - self._start_counts.get(counter, 0)

    def delta_bytes(self, counter: str) -> int:
        """Measured-phase increase of a counter's byte volume."""
        end = self._end_bytes if self._end_bytes else self.stats.snapshot_bytes()
        return end.get(counter, 0) - self._start_bytes.get(counter, 0)

    def _delta_prefix_bytes(self, prefix: str) -> int:
        end = self._end_bytes if self._end_bytes else self.stats.snapshot_bytes()
        total = 0
        for name, value in end.items():
            if name.startswith(prefix):
                total += value - self._start_bytes.get(name, 0)
        return total

    # ------------------------------------------------------------------
    # derived quantities (one per paper metric)
    # ------------------------------------------------------------------
    @property
    def duration_ns(self) -> int:
        """Measured-phase length."""
        if self._start_ns is None:
            return 0
        end = self._end_ns if self._end_ns is not None else self.sim.now
        return end - self._start_ns

    def throughput_qps(self) -> float:
        """Operations per simulated second."""
        if self.duration_ns <= 0:
            return 0.0
        return self.operations * SEC / self.duration_ns

    def write_query_bytes(self) -> int:
        """Payload bytes carried by update queries (fig 3a denominator)."""
        return self.delta_bytes(names.QUERY_UPDATE)

    def host_io_bytes(self) -> int:
        """All host interface traffic: reads + writes, any cause."""
        return (self.delta_bytes(names.HOST_READ_CMDS) +
                self.delta_bytes(names.HOST_WRITE_CMDS))

    def io_amplification(self) -> float:
        """Host I/O bytes over write-query bytes (fig 3a, left group)."""
        return safe_ratio(self.host_io_bytes(), self.write_query_bytes())

    def flash_ops(self) -> int:
        """Flash array operations: reads + programs + erases."""
        return (self.delta(names.FLASH_READ) +
                self.delta(names.FLASH_PROGRAM) +
                self.delta(names.FLASH_ERASE))

    def flash_bytes(self) -> int:
        """Flash bytes moved (reads + programs)."""
        return (self.delta_bytes(names.FLASH_READ) +
                self.delta_bytes(names.FLASH_PROGRAM))

    def flash_amplification(self) -> float:
        """Flash bytes over write-query bytes (fig 3a, right group)."""
        return safe_ratio(self.flash_bytes(), self.write_query_bytes())

    def redundant_write_units(self) -> int:
        """Checkpoint-induced duplicate writes, in mapping units (fig 8a).

        Counts every unit programmed because of checkpointing: device-side
        CoW copies (incl. their read-modify-write inflation), baseline's
        host rewrite of the data area, and checkpoint metadata.
        """
        return (self.delta(names.FTL_UNITS_WRITE_CKPT) +
                self.delta(names.FTL_UNITS_WRITE_CKPT_META))

    def redundant_write_bytes(self) -> int:
        """Checkpoint-induced duplicate write volume in bytes."""
        return (self.delta_bytes(names.FTL_UNITS_WRITE_CKPT) +
                self.delta_bytes(names.FTL_UNITS_WRITE_CKPT_META))

    def remapped_units(self) -> int:
        """Units checkpointed by pure remapping (zero-copy)."""
        return self.delta(names.ISCE_REMAPPED_UNITS)

    def gc_invocations(self) -> int:
        """Garbage-collection victim passes (fig 8b)."""
        return self.delta(names.GC_INVOCATIONS)

    def erase_count(self) -> int:
        """Block erases in the measured phase."""
        return self.delta(names.FLASH_ERASE)

    def gc_migrated_units(self) -> int:
        """Valid units GC had to rewrite."""
        return self.delta(names.GC_MIGRATED_UNITS)

    def waf(self) -> float:
        """Write amplification: flash program bytes / host write bytes."""
        return safe_ratio(self.delta_bytes(names.FLASH_PROGRAM),
                          self.delta_bytes(names.HOST_WRITE_CMDS))

    def lifetime(self, max_pe_cycles: int) -> LifetimeEstimate:
        """Equation (1) over the measured phase."""
        return LifetimeEstimate(max_pe_cycles=max_pe_cycles,
                                operation_time_ns=self.duration_ns,
                                block_erase_count=self.erase_count())

    def journal_padding_bytes(self) -> int:
        """Alignment/packing waste written to the journal (fig 13b)."""
        return self.delta_bytes(names.JOURNAL_PADDING)

    def journal_stored_bytes(self) -> int:
        """Total journal footprint written (fig 13b numerator)."""
        return self.delta_bytes(names.JOURNAL_TRANSACTIONS)

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline numbers (for reports/benches)."""
        tails = self.latency_all.p(99.0, 99.9, 99.99)  # one sort, all tails
        return {
            "operations": float(self.operations),
            "duration_ms": self.duration_ns / 1e6,
            "throughput_qps": self.throughput_qps(),
            "latency_mean_us": self.latency_all.mean() / 1e3,
            "latency_p99_us": tails[99.0] / 1e3,
            "latency_p999_us": tails[99.9] / 1e3,
            "latency_p9999_us": tails[99.99] / 1e3,
            "io_amplification": self.io_amplification(),
            "flash_amplification": self.flash_amplification(),
            "redundant_units": float(self.redundant_write_units()),
            "remapped_units": float(self.remapped_units()),
            "gc_invocations": float(self.gc_invocations()),
            "erases": float(self.erase_count()),
            "waf": self.waf(),
            "erase_min": self.erase_min,
            "erase_max": self.erase_max,
            "erase_mean": self.erase_mean,
            "bad_blocks": float(self.bad_blocks),
            "degraded": 1.0 if self.device_degraded else 0.0,
            "media_program_fails": float(self.delta(names.MEDIA_PROGRAM_FAIL)),
            "media_erase_fails": float(self.delta(names.MEDIA_ERASE_FAIL)),
            "media_read_retries": float(self.delta(names.MEDIA_READ_RETRY)),
            "media_uecc": float(self.delta(names.MEDIA_READ_UECC)),
            "media_relocations": float(self.delta(names.MEDIA_RELOCATIONS)),
            "cmd_media_retries": float(self.delta(names.CMD_MEDIA_RETRIES)),
        }
