"""Whole-system configuration — the reproduction of Table I.

One :class:`SystemConfig` captures the DBMS, host and SSD configuration of
a run.  The five evaluated systems (baseline … checkin) are derived from
the same config via :meth:`SystemConfig.with_mode`, which flips exactly
the knobs the paper varies: mapping unit, ISCE presence, remap capability
and journal formatting.

Scaling note (documented per experiment in EXPERIMENTS.md): volumes are
scaled down uniformly from the paper's testbed — a checkpoint interval of
tens of simulated milliseconds against a hundreds-of-MiB device plays the
role of 60 s against a full SSD.  Flash latencies stay at realistic values
so latency *ratios* are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.units import KIB, MIB, MS, SECTOR_SIZE, US, ceil_div
from repro.engine.engine import MODES, EngineConfig
from repro.flash.geometry import FlashGeometry
from repro.flash.media import MediaErrorConfig
from repro.flash.timing import FlashTiming
from repro.ftl.ftl import FtlConfig
from repro.ssd.controller import ControllerConfig
from repro.ssd.interface import (
    InterfaceConfig,
    NamespaceLayout,
    NamespaceRange,
)
from repro.ssd.ssd import SsdSpec
from repro.engine.admission import AdmissionConfig
from repro.telemetry.sampler import TelemetryConfig
from repro.workload.arrivals import ArrivalSpec
from repro.workload.records import (
    FixedSize,
    RecordSizeModel,
    mixed_pattern,
    small_value_default,
)

DEFAULT_MAPPING_UNITS = {
    "baseline": 4096,
    "isc_a": 4096,
    "isc_b": 4096,
    "isc_c": 512,
    "checkin": 512,
}
"""Per-configuration FTL mapping unit (Table I: 4 KiB page mapping for the
conventional systems, 512 B sub-page mapping for ISC-C and Check-In)."""


@lru_cache(maxsize=None)
def _size_model(size_spec: str, seed: int) -> RecordSizeModel:
    """Shared record-size model instances (see SystemConfig.size_model)."""
    if size_spec == "small-default":
        return small_value_default(seed=seed)
    if size_spec.startswith("fixed-"):
        return FixedSize(int(size_spec.split("-", 1)[1]))
    if size_spec.upper() in ("P1", "P2", "P3", "P4"):
        return mixed_pattern(size_spec, seed=seed)
    raise ConfigError(f"unknown size_spec {size_spec!r}")


@lru_cache(maxsize=1024)
def _data_area_sectors(size_spec: str, seed: int, num_keys: int,
                       mode: str, mapping_unit: int, compress_ratio: float,
                       slack: float) -> int:
    """Cached body of SystemConfig.data_area_sectors.

    The footprint is a pure function of these seven fields, but it walks
    the whole key population; every ``engine_config()`` call (device spec,
    engine construction, capacity check) used to recompute it.
    """
    model = _size_model(size_spec, seed)
    unit_sectors = mapping_unit // SECTOR_SIZE
    formatter = None
    if mode == "checkin":
        from repro.engine.aligner import SectorAlignedFormatter
        formatter = SectorAlignedFormatter(
            mapping_size=mapping_unit,
            compress_ratio=compress_ratio)
    total = 0
    for _key, size in model.sizes(num_keys):
        stored = formatter.stored_size(size) if formatter else size
        nsectors = ceil_div(stored, SECTOR_SIZE)
        # Mirror the engine: only remappable (whole-unit) records get
        # unit-aligned homes; everything else packs at sector grain.
        # Aligned records may also skip up to unit_sectors-1 sectors
        # to reach their boundary.
        if formatter is not None and stored % mapping_unit == 0:
            if nsectors % unit_sectors:
                nsectors += unit_sectors - (nsectors % unit_sectors)
            nsectors += unit_sectors - 1
        total += nsectors
    return int(total * (1.0 + slack)) + unit_sectors


@dataclass(frozen=True)
class TenantSpec:
    """Per-tenant overrides for a multi-tenant (namespaced) run.

    Every field left ``None`` inherits the base :class:`SystemConfig`
    value; ``seed_offset`` defaults to the tenant's index so tenants get
    distinct-but-deterministic RNG lineages (tenant 0 keeps the base seed
    and therefore reproduces the single-tenant run exactly).
    """

    name: str = ""
    workload: Optional[str] = None
    distribution: Optional[str] = None
    threads: Optional[int] = None
    num_keys: Optional[int] = None
    total_queries: Optional[int] = None
    size_spec: Optional[str] = None
    seed_offset: Optional[int] = None
    checkpoint_interval_ns: Optional[int] = None
    checkpoint_journal_quota: Optional[int] = None
    journal_area_bytes: Optional[int] = None
    arrivals: Optional[ArrivalSpec] = None
    admission: Optional[AdmissionConfig] = None

    def label(self, index: int) -> str:
        """Display name of the tenant at ``index``."""
        return self.name or f"tenant{index}"


_TENANT_OVERRIDE_FIELDS = (
    "workload", "distribution", "threads", "num_keys", "total_queries",
    "size_spec", "checkpoint_interval_ns", "checkpoint_journal_quota",
    "journal_area_bytes", "arrivals", "admission")


@dataclass(frozen=True)
class SystemConfig:
    """Everything that defines one simulated run."""

    # --- configuration under test -------------------------------------
    mode: str = "baseline"
    seed: int = 42
    mapping_unit: Optional[int] = None
    """None = the mode's default (DEFAULT_MAPPING_UNITS)."""

    # --- DBMS / workload (Table I, DBMS configuration) -----------------
    workload: str = "A"
    distribution: str = "zipfian"
    threads: int = 32
    num_keys: int = 4096
    total_queries: int = 20_000
    size_spec: str = "small-default"
    """'small-default', 'fixed-<N>', or a mixed pattern 'P1'..'P4'."""

    # --- checkpoint policy ----------------------------------------------
    checkpoint_interval_ns: int = 50 * MS
    """Scaled stand-in for the paper's 60 s interval."""

    checkpoint_journal_quota: int = 4 * MIB
    """Stored journal bytes that force a checkpoint (the paper's 2 GiB /
    200-journal-file trigger, scaled)."""

    trigger_poll_ns: int = 1 * MS
    final_checkpoint: bool = True
    lock_queries_during_checkpoint: bool = False

    # --- host engine ------------------------------------------------------
    group_commit_ns: int = 20 * US
    max_txn_logs: int = 256
    compress_ratio: float = 1.0
    mem_cache_records: int = 512
    mem_hit_ns: int = 2_000
    cpu_query_ns: int = 1_000
    ckpt_parallelism: int = 64
    cow_batch: int = 256
    verify_reads: bool = True

    # --- journal / metadata regions ------------------------------------
    journal_area_bytes: int = 16 * MIB
    meta_area_sectors: int = 128
    data_area_slack: float = 0.10
    """Extra data-area sectors beyond the exact record footprint."""

    # --- SSD (Table I, storage configuration) ---------------------------
    channels: int = 4
    packages_per_channel: int = 1
    dies_per_package: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 48
    pages_per_block: int = 64
    page_size: int = 4096
    flash_read_ns: int = 60 * US
    flash_program_ns: int = 800 * US
    flash_erase_ns: int = 3_500 * US
    channel_bandwidth: int = 800 * 1000 * 1000
    queue_depth: int = 64
    interface_overhead_ns: int = 5_000
    pcie_bandwidth: int = 3_200_000_000
    ssd_cpu_cores: int = 2
    read_cache_units: int = 4096
    write_buffer_bytes: int = 2 * MIB
    gc_low_watermark: int = 2
    gc_high_watermark: int = 6
    max_pe_cycles: int = 3000
    media: Optional[MediaErrorConfig] = None
    """NAND media-error model; None = perfect flash (legacy behaviour).
    The device is seeded from the run seed, so same-seed runs draw the
    identical failure sequence."""

    spare_block_budget: int = 8
    """Grown-bad blocks tolerated before the device goes read-only."""

    read_reclaim_threshold: int = 100_000
    """Reads-since-erase that make a block a read-reclaim candidate."""

    media_retry_limit: int = 3
    """Controller-level whole-command retries on media errors."""

    snapshot_metadata: bool = False
    """Per-persist L2P snapshots (enable for recovery-focused runs)."""

    track_op_log: bool = False
    """Durable remap/trim op log for SPOR verification (recovery runs)."""

    trace: bool = False
    """Install a span tracer on this run's simulator (see ``repro.trace``).
    Off by default: a traced and an untraced run execute the identical
    event sequence, so leaving this off costs nothing."""

    telemetry: Optional[TelemetryConfig] = None
    """Wire a :class:`~repro.telemetry.sampler.TelemetrySampler` on this
    run (see ``repro.telemetry``).  None (the default) builds no sampler
    at all — like ``trace``, disabled telemetry costs nothing and the
    counter snapshots stay byte-identical to an instrumented run."""

    blame: bool = False
    """Attach per-request blame ledgers (see ``repro.obs``).  Off by
    default: blame only measures existing windows (no extra yields), so
    even an enabled run executes the identical event sequence — but a
    disabled run also skips every ledger allocation and clock read."""

    flightrec: bool = False
    """Arm the black-box flight recorder (see ``repro.obs.flightrec``):
    a bounded ring of high-signal events (watchdog edges, sheds,
    checkpoint phases, media retries, GC picks, replication NACKs,
    degraded entry) plus incident triggers.  Appends are synchronous
    plain-tuple pushes — zero added yields — and a disabled run
    allocates nothing (``sim.flightrec`` stays ``None``)."""

    arrivals: Optional[ArrivalSpec] = None
    """Open-loop arrival process (see ``repro.workload.arrivals``).  None
    (the default) keeps the classic closed-loop client threads; a spec
    replaces them with a single dispatcher firing ``total_queries``
    operations at externally generated instants.  Like ``trace`` and
    ``telemetry``, leaving this off costs nothing: an arrivals-off run is
    byte-identical to the pre-open-loop behaviour."""

    admission: Optional[AdmissionConfig] = None
    """Front-door admission control (see ``repro.engine.admission``).
    None + arrivals set means a default bounded-queue controller (open
    loop without a front door would queue unboundedly past saturation);
    None with closed-loop clients means no front door at all."""

    tenants: Optional[Tuple[TenantSpec, ...]] = None
    """None = classic single-tenant run.  A tuple (even of length one)
    selects namespace sharding: each tenant gets its own engine, journal
    and LBA range on the shared device."""

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.tenants is not None and len(self.tenants) < 1:
            raise ConfigError("tenants tuple must not be empty")
        if self.threads < 1:
            raise ConfigError("threads must be >= 1")
        if self.num_keys < 1 or self.total_queries < 1:
            raise ConfigError("num_keys and total_queries must be >= 1")
        unit = self.resolved_mapping_unit
        if unit < SECTOR_SIZE or unit > self.page_size or self.page_size % unit:
            raise ConfigError(f"mapping unit {unit} incompatible with "
                              f"{self.page_size} B pages")

    # ------------------------------------------------------------------
    # derived pieces
    # ------------------------------------------------------------------
    @property
    def resolved_mapping_unit(self) -> int:
        """The FTL mapping unit actually in force."""
        if self.mapping_unit is not None:
            return self.mapping_unit
        return DEFAULT_MAPPING_UNITS[self.mode]

    def with_mode(self, mode: str) -> "SystemConfig":
        """The same experiment under a different configuration."""
        return replace(self, mode=mode)

    def effective_admission(self) -> Optional[AdmissionConfig]:
        """The front-door config actually in force.

        Open-loop runs always get a front door (explicit or default);
        closed-loop runs only get one when asked.
        """
        if self.admission is not None:
            return self.admission
        if self.arrivals is not None:
            return AdmissionConfig()
        return None

    def size_model(self) -> RecordSizeModel:
        """Instantiate the record-size model from ``size_spec``.

        Memoised on ``(size_spec, seed)``: the model is a pure function of
        those two fields, and sharing the instance shares its per-key size
        cache across the several places one run consults it
        (:meth:`data_area_sectors`, capacity checks, the engine load).
        """
        return _size_model(self.size_spec, self.seed)

    def geometry(self) -> FlashGeometry:
        """The NAND geometry of this run's device."""
        return FlashGeometry(
            channels=self.channels,
            packages_per_channel=self.packages_per_channel,
            dies_per_package=self.dies_per_package,
            planes_per_die=self.planes_per_die,
            blocks_per_plane=self.blocks_per_plane,
            pages_per_block=self.pages_per_block,
            page_size=self.page_size)

    def timing(self) -> FlashTiming:
        """The NAND timing of this run's device."""
        return FlashTiming(
            read_ns=self.flash_read_ns,
            program_ns=self.flash_program_ns,
            erase_ns=self.flash_erase_ns,
            channel_bandwidth=self.channel_bandwidth)

    def ssd_spec(self) -> SsdSpec:
        """The full device spec for this configuration."""
        engine_cfg = self.engine_config()
        return SsdSpec(
            geometry=self.geometry(),
            timing=self.timing(),
            ftl=FtlConfig(mapping_unit=self.resolved_mapping_unit,
                          gc_low_watermark=self.gc_low_watermark,
                          gc_high_watermark=self.gc_high_watermark,
                          write_buffer_bytes=self.write_buffer_bytes,
                          max_pe_cycles=self.max_pe_cycles,
                          snapshot_metadata=self.snapshot_metadata,
                          track_op_log=self.track_op_log,
                          spare_block_budget=self.spare_block_budget,
                          read_reclaim_threshold=self.read_reclaim_threshold),
            interface=InterfaceConfig(
                queue_depth=self.queue_depth,
                command_overhead_ns=self.interface_overhead_ns,
                pcie_bandwidth=self.pcie_bandwidth),
            controller=ControllerConfig(
                cpu_cores=self.ssd_cpu_cores,
                read_cache_units=self.read_cache_units,
                media_retry_limit=self.media_retry_limit),
            enable_isce=engine_cfg.uses_in_storage_checkpoint,
            allow_remap=engine_cfg.device_allow_remap,
            media=self.media,
            media_seed=self.seed)

    def data_area_sectors(self) -> int:
        """Upper-bound data-area footprint of the key population.

        Uses the formatted (stored) size for the aligned-journaling mode
        and rounds every record to the mapping unit — a safe over-estimate
        of the engine's per-record alignment decisions — plus slack.
        Memoised (module-level) on the fields it actually reads.
        """
        return _data_area_sectors(self.size_spec, self.seed, self.num_keys,
                                  self.mode, self.resolved_mapping_unit,
                                  self.compress_ratio, self.data_area_slack)

    def engine_config(self) -> EngineConfig:
        """The storage-engine configuration for this run."""
        journal_sectors = self.journal_area_bytes // SECTOR_SIZE
        if journal_sectors % 2:
            journal_sectors -= 1
        meta_start = journal_sectors
        data_start = meta_start + self.meta_area_sectors
        unit_sectors = self.resolved_mapping_unit // SECTOR_SIZE
        if data_start % unit_sectors:
            data_start += unit_sectors - (data_start % unit_sectors)
        return EngineConfig(
            mode=self.mode,
            journal_lba_start=0,
            journal_sectors=journal_sectors,
            meta_lba_start=meta_start,
            meta_sectors=self.meta_area_sectors,
            data_lba_start=data_start,
            data_sectors=self.data_area_sectors(),
            mapping_unit=self.resolved_mapping_unit,
            group_commit_ns=self.group_commit_ns,
            max_txn_logs=self.max_txn_logs,
            compress_ratio=self.compress_ratio,
            mem_cache_records=self.mem_cache_records,
            mem_hit_ns=self.mem_hit_ns,
            cpu_query_ns=self.cpu_query_ns,
            ckpt_parallelism=self.ckpt_parallelism,
            cow_batch=self.cow_batch,
            lock_queries_during_checkpoint=self.lock_queries_during_checkpoint,
            verify_reads=self.verify_reads)

    # ------------------------------------------------------------------
    # multi-tenant (namespace) derivations
    # ------------------------------------------------------------------
    @property
    def num_tenants(self) -> int:
        """Tenant count (1 for a classic single-tenant run)."""
        return len(self.tenants) if self.tenants is not None else 1

    def tenant_view(self, index: int) -> "SystemConfig":
        """The effective single-tenant config of tenant ``index``.

        A view is a plain :class:`SystemConfig` (``tenants=None``) with the
        tenant's overrides and seed applied — it drives the tenant's
        workload generators, checkpoint policy and engine layout, while
        device-level fields are only read from the base config.
        """
        if self.tenants is None or not 0 <= index < len(self.tenants):
            raise ConfigError(f"no tenant at index {index}")
        spec = self.tenants[index]
        overrides = {name: getattr(spec, name)
                     for name in _TENANT_OVERRIDE_FIELDS
                     if getattr(spec, name) is not None}
        offset = spec.seed_offset if spec.seed_offset is not None else index
        return replace(self, tenants=None, seed=self.seed + offset,
                       **overrides)

    def namespace_layout(self) -> NamespaceLayout:
        """Stack each tenant's LBA footprint into one namespace layout.

        Footprints are page-aligned so no flash page (and hence no mapping
        unit) straddles two namespaces.
        """
        if self.tenants is None:
            raise ConfigError("namespace_layout needs a tenants tuple")
        page_sectors = self.page_size // SECTOR_SIZE
        ranges = []
        base = 0
        for index, spec in enumerate(self.tenants):
            engine_cfg = self.tenant_view(index).engine_config()
            footprint = engine_cfg.data_lba_start + engine_cfg.data_sectors
            if footprint % page_sectors:
                footprint += page_sectors - (footprint % page_sectors)
            ranges.append(NamespaceRange(nsid=index, lba_start=base,
                                         nsectors=footprint,
                                         name=spec.label(index)))
            base += footprint
        return NamespaceLayout(ranges)

    def tenant_engine_config(self, index: int) -> EngineConfig:
        """Tenant ``index``'s engine regions, offset to its namespace base.

        Engines address the shared device in absolute LBAs; isolation is
        the controller's range check, not address translation, so tenant 0
        (base 0) is bit-identical to the legacy single-engine layout.
        """
        engine_cfg = self.tenant_view(index).engine_config()
        base = self.namespace_layout().get(index).lba_start
        if base == 0:
            return engine_cfg
        return replace(
            engine_cfg,
            journal_lba_start=engine_cfg.journal_lba_start + base,
            meta_lba_start=engine_cfg.meta_lba_start + base,
            data_lba_start=engine_cfg.data_lba_start + base)

    def check_capacity(self) -> Tuple[int, int]:
        """Validate logical footprint vs raw flash; returns (logical, raw).

        Keeps at least ~20 % of raw capacity as over-provisioning so GC
        has somewhere to work.
        """
        if self.tenants is not None:
            logical_sectors = self.namespace_layout().ranges[-1].lba_end
        else:
            engine_cfg = self.engine_config()
            logical_sectors = (engine_cfg.data_lba_start
                               + engine_cfg.data_sectors)
        logical_bytes = logical_sectors * SECTOR_SIZE
        raw = self.geometry().capacity_bytes
        if logical_bytes > raw * 0.80:
            raise ConfigError(
                f"logical footprint {logical_bytes // KIB} KiB exceeds 80% of "
                f"raw capacity {raw // KIB} KiB; grow the device or shrink "
                "the workload")
        return logical_bytes, raw


def tiny_config(**overrides) -> SystemConfig:
    """A seconds-scale configuration for unit/integration tests."""
    defaults = dict(
        threads=4,
        num_keys=256,
        total_queries=1_500,
        journal_area_bytes=2 * MIB,
        checkpoint_interval_ns=10 * MS,
        checkpoint_journal_quota=256 * KIB,
        channels=2,
        dies_per_package=1,
        planes_per_die=2,
        blocks_per_plane=24,
        pages_per_block=32,
        mem_cache_records=64,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)
