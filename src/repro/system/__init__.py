"""Full-system wiring: configuration, metrics, orchestration."""

from repro.system.config import (
    DEFAULT_MAPPING_UNITS,
    SystemConfig,
    TenantSpec,
    tiny_config,
)
from repro.system.metrics import LifetimeEstimate, RunMetrics
from repro.system.system import (
    KvSystem,
    RunResult,
    TenantResult,
    run_config,
)

__all__ = [
    "DEFAULT_MAPPING_UNITS",
    "SystemConfig",
    "TenantSpec",
    "tiny_config",
    "LifetimeEstimate",
    "RunMetrics",
    "KvSystem",
    "RunResult",
    "TenantResult",
    "run_config",
]
