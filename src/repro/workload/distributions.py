"""Request-key distributions: uniform and (scrambled) Zipfian.

The Zipfian generator follows the YCSB reference implementation
(Gray et al.'s rejection-free method): skew parameter theta = 0.99 by
default, zeta precomputed once for the item count.  The scrambled variant
hashes the rank so popular keys spread over the key space — this is what
YCSB actually uses for its "zipfian" request distribution.
"""

from __future__ import annotations

import abc

from repro.common.errors import WorkloadError
from repro.common.rng import SeededRng

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer's 8 little-endian bytes."""
    digest = _FNV_OFFSET
    for _ in range(8):
        digest ^= value & 0xFF
        digest = (digest * _FNV_PRIME) & _MASK
        value >>= 8
    return digest


class KeyDistribution(abc.ABC):
    """Draws keys in ``[0, item_count)``."""

    def __init__(self, item_count: int) -> None:
        if item_count < 1:
            raise WorkloadError("item_count must be >= 1")
        self.item_count = item_count

    @abc.abstractmethod
    def next_key(self) -> int:
        """Draw one key."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Distribution label used in reports."""


class UniformKeys(KeyDistribution):
    """Every key equally likely."""

    def __init__(self, item_count: int, rng: SeededRng) -> None:
        super().__init__(item_count)
        self._rng = rng

    @property
    def name(self) -> str:
        return "uniform"

    def next_key(self) -> int:
        return self._rng.randint(0, self.item_count - 1)


def zeta(n: int, theta: float) -> float:
    """Partial harmonic sum ``sum(1 / i**theta for i in 1..n)``."""
    if n < 1:
        raise WorkloadError("zeta needs n >= 1")
    return sum(1.0 / (i ** theta) for i in range(1, n + 1))


class ZipfianKeys(KeyDistribution):
    """YCSB's Zipfian distribution over ranks (rank 0 most popular)."""

    def __init__(self, item_count: int, rng: SeededRng,
                 theta: float = 0.99) -> None:
        super().__init__(item_count)
        if not 0.0 < theta < 1.0:
            raise WorkloadError(f"theta must be in (0, 1), got {theta}")
        self._rng = rng
        self.theta = theta
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = zeta(item_count, theta)
        self._zeta2 = zeta(2, theta) if item_count >= 2 else self._zetan
        self._eta = ((1.0 - (2.0 / item_count) ** (1.0 - theta)) /
                     (1.0 - self._zeta2 / self._zetan)) if item_count >= 2 else 1.0

    @property
    def name(self) -> str:
        return "zipfian"

    def next_key(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if self.item_count >= 2 and uz < 1.0 + 0.5 ** self.theta:
            return 1
        rank = int(self.item_count *
                   ((self._eta * u - self._eta + 1.0) ** self._alpha))
        return min(rank, self.item_count - 1)


class ScrambledZipfianKeys(ZipfianKeys):
    """Zipfian ranks scattered over the key space via FNV hashing."""

    @property
    def name(self) -> str:
        return "scrambled_zipfian"

    def next_key(self) -> int:
        rank = super().next_key()
        return fnv1a_64(rank) % self.item_count


DISTRIBUTIONS = {
    "uniform": UniformKeys,
    "zipfian": ZipfianKeys,
    "scrambled_zipfian": ScrambledZipfianKeys,
}


def make_distribution(name: str, item_count: int,
                      rng: SeededRng) -> KeyDistribution:
    """Factory keyed by distribution name."""
    try:
        cls = DISTRIBUTIONS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown distribution {name!r}; "
            f"expected one of {sorted(DISTRIBUTIONS)}") from None
    return cls(item_count, rng)
