"""Closed-loop client threads.

Each simulated application thread issues one operation at a time against
the storage engine — the paper sweeps 4 to 128 such threads.  A shared
operation budget stops the pool after ``total_operations`` queries, and
every completed operation reports its latency (plus whether a checkpoint
was running when it *started*, which feeds the Figure 3(c) analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from repro.common.errors import WorkloadError
from repro.engine.engine import StorageEngine
from repro.obs.blame import BlameCollector, RequestLedger
from repro.sim.core import Simulator, all_of
from repro.sim.process import Process, spawn
from repro.workload.ycsb import OpKind, Operation, OperationGenerator

LatencySink = Callable[[Operation, int, bool], None]
"""Callback: (operation, latency_ns, checkpoint_was_running)."""


@dataclass
class ClientPoolResult:
    """Summary of one pool run."""

    operations: int
    started_at: int
    finished_at: int

    @property
    def duration_ns(self) -> int:
        """Wall-clock span of the measured phase."""
        return self.finished_at - self.started_at


class ClientPool:
    """A fixed number of closed-loop threads sharing an operation budget."""

    def __init__(self, sim: Simulator, engine: StorageEngine,
                 generators: List[OperationGenerator],
                 total_operations: int,
                 on_complete: Optional[LatencySink] = None,
                 label: str = "",
                 blame: Optional[BlameCollector] = None) -> None:
        if not generators:
            raise WorkloadError("need at least one client thread")
        if total_operations < 1:
            raise WorkloadError("total_operations must be >= 1")
        self.sim = sim
        self.engine = engine
        self.generators = generators
        self.total_operations = total_operations
        self.on_complete = on_complete
        self.label = label
        """Process-name prefix; multi-tenant runs tag each tenant's
        threads (e.g. "tenant1.client0") for readable traces."""
        self.blame = blame
        """When set, every operation carries a blame ledger and lands in
        this collector at completion (see :mod:`repro.obs.blame`)."""
        self._remaining = total_operations
        self._issued = 0

    @property
    def threads(self) -> int:
        """Thread count of the pool."""
        return len(self.generators)

    def start(self) -> Process:
        """Spawn every thread; returns a process to join for completion."""
        started_at = self.sim.now
        prefix = f"{self.label}." if self.label else ""
        workers = [spawn(self.sim, self._thread_loop(generator, i),
                         name=f"{prefix}client{i}")
                   for i, generator in enumerate(self.generators)]

        def waiter():
            yield all_of(self.sim, workers)
            return ClientPoolResult(operations=self._issued,
                                    started_at=started_at,
                                    finished_at=self.sim.now)

        return spawn(self.sim, waiter(), name=f"{prefix}client-pool")

    def _thread_loop(self, generator: OperationGenerator,
                     thread: int) -> Generator[Any, Any, None]:
        tracer = self.sim.tracer
        while self._remaining > 0:
            self._remaining -= 1
            operation = generator.next_operation()
            ckpt_at_start = self.engine.checkpoint_running
            started = self.sim.now
            span = tracer.begin("client", operation.kind.value, track=thread,
                                key=operation.key,
                                during_ckpt=ckpt_at_start) \
                if tracer.enabled else None
            ledger = RequestLedger(
                op=operation.kind.value, key=operation.key,
                during_ckpt=ckpt_at_start,
                span_id=span.span_id if span is not None else None) \
                if self.blame is not None else None
            yield from self._execute(operation, span, ledger)
            if span is not None:
                tracer.end(span)
            if ledger is not None:
                ledger.finalize(self.sim.now - started)
                self.blame.record(ledger)
            self._issued += 1
            if self.on_complete is not None:
                self.on_complete(operation, self.sim.now - started,
                                 ckpt_at_start)

    def _execute(self, operation: Operation, span: Any = None,
                 blame: Any = None) -> Generator[Any, Any, None]:
        if operation.kind is OpKind.READ:
            yield from self.engine.get(operation.key, trace_parent=span,
                                       blame=blame)
        elif operation.kind is OpKind.UPDATE:
            yield from self.engine.put(operation.key, trace_parent=span,
                                       blame=blame)
        else:
            yield from self.engine.read_modify_write(operation.key,
                                                     trace_parent=span,
                                                     blame=blame)
