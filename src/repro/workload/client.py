"""Client pools: closed-loop threads and open-loop arrival dispatch.

Two ways to offer load:

* :class:`ClientPool` — the paper's closed-loop YCSB threads.  Each
  simulated application thread issues one operation at a time, so the
  pool self-throttles to whatever the system sustains (4 to 128 threads
  in the paper's sweep).
* :class:`OpenLoopClientPool` — arrivals on their own clock (see
  :mod:`repro.workload.arrivals`).  Each arrival instant spawns an
  independent in-flight operation regardless of how slow the system is,
  so saturation shows up as queueing and shedding instead of silently
  depressed throughput.

Both pools can sit behind a front-door
:class:`~repro.engine.admission.AdmissionController`: every submitted
operation then gets exactly one typed completion — executed (``ok``) or
shed with a reason — and time spent queued at the front door is charged
to the ``admission`` blame stage.  With no controller the closed-loop
path is byte-identical to the historical behaviour.

Every completed operation reports its latency (plus whether a checkpoint
was running when it *arrived*, which feeds the Figure 3(c) analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from repro.common.errors import WorkloadError
from repro.engine.admission import AdmissionController
from repro.engine.engine import StorageEngine
from repro.obs.blame import ADMISSION, BlameCollector, RequestLedger
from repro.sim.core import Simulator, all_of
from repro.sim.process import Process, spawn
from repro.workload.ycsb import OpKind, Operation, OperationGenerator

LatencySink = Callable[[Operation, int, bool], None]
"""Callback: (operation, latency_ns, checkpoint_was_running)."""

OK = "ok"
"""Typed-completion bucket for operations that executed to completion."""


def _execute_op(engine: StorageEngine, operation: Operation,
                span: Any = None,
                blame: Any = None) -> Generator[Any, Any, None]:
    """Dispatch one operation to the engine (shared by both pools)."""
    if operation.kind is OpKind.READ:
        yield from engine.get(operation.key, trace_parent=span, blame=blame)
    elif operation.kind is OpKind.UPDATE:
        yield from engine.put(operation.key, trace_parent=span, blame=blame)
    else:
        yield from engine.read_modify_write(operation.key, trace_parent=span,
                                            blame=blame)


@dataclass
class ClientPoolResult:
    """Summary of one pool run."""

    operations: int
    started_at: int
    finished_at: int
    completions: Dict[str, int] = field(default_factory=dict)
    """Typed-completion histogram (``ok`` plus shed reasons); empty for
    runs without an admission controller."""

    @property
    def duration_ns(self) -> int:
        """Wall-clock span of the measured phase."""
        return self.finished_at - self.started_at


class ClientPool:
    """A fixed number of closed-loop threads sharing an operation budget."""

    def __init__(self, sim: Simulator, engine: StorageEngine,
                 generators: List[OperationGenerator],
                 total_operations: int,
                 on_complete: Optional[LatencySink] = None,
                 label: str = "",
                 blame: Optional[BlameCollector] = None,
                 admission: Optional[AdmissionController] = None) -> None:
        if not generators:
            raise WorkloadError("need at least one client thread")
        if total_operations < 1:
            raise WorkloadError("total_operations must be >= 1")
        self.sim = sim
        self.engine = engine
        self.generators = generators
        self.total_operations = total_operations
        self.on_complete = on_complete
        self.label = label
        """Process-name prefix; multi-tenant runs tag each tenant's
        threads (e.g. "tenant1.client0") for readable traces."""
        self.blame = blame
        """When set, every operation carries a blame ledger and lands in
        this collector at completion (see :mod:`repro.obs.blame`)."""
        self.admission = admission
        """Optional front door; ``None`` keeps the legacy path intact."""
        self.completions: Dict[str, int] = {}
        self._remaining = total_operations
        self._issued = 0

    @property
    def threads(self) -> int:
        """Thread count of the pool."""
        return len(self.generators)

    def start(self) -> Process:
        """Spawn every thread; returns a process to join for completion."""
        started_at = self.sim.now
        prefix = f"{self.label}." if self.label else ""
        workers = [spawn(self.sim, self._thread_loop(generator, i),
                         name=f"{prefix}client{i}")
                   for i, generator in enumerate(self.generators)]

        def waiter():
            yield all_of(self.sim, workers)
            return ClientPoolResult(operations=self._issued,
                                    started_at=started_at,
                                    finished_at=self.sim.now,
                                    completions=dict(self.completions))

        return spawn(self.sim, waiter(), name=f"{prefix}client-pool")

    def _thread_loop(self, generator: OperationGenerator,
                     thread: int) -> Generator[Any, Any, None]:
        tracer = self.sim.tracer
        while self._remaining > 0:
            self._remaining -= 1
            operation = generator.next_operation()
            started = self.sim.now
            ticket = None
            if self.admission is not None:
                ticket = self.admission.try_admit(
                    operation.kind is OpKind.READ)
                if ticket.shed:
                    self.completions[ticket.outcome] = \
                        self.completions.get(ticket.outcome, 0) + 1
                    continue
                if ticket.queued:
                    yield ticket.event
            ckpt_at_start = self.engine.checkpoint_running
            span = tracer.begin("client", operation.kind.value, track=thread,
                                key=operation.key,
                                during_ckpt=ckpt_at_start) \
                if tracer.enabled else None
            ledger = RequestLedger(
                op=operation.kind.value, key=operation.key,
                during_ckpt=ckpt_at_start,
                span_id=span.span_id if span is not None else None) \
                if self.blame is not None else None
            if ledger is not None:
                ledger.charge(ADMISSION, self.sim.now - started)
            yield from _execute_op(self.engine, operation, span, ledger)
            if ticket is not None:
                self.admission.release()
                self.completions[OK] = self.completions.get(OK, 0) + 1
            if span is not None:
                tracer.end(span)
            if ledger is not None:
                ledger.finalize(self.sim.now - started)
                self.blame.record(ledger)
            self._issued += 1
            if self.on_complete is not None:
                self.on_complete(operation, self.sim.now - started,
                                 ckpt_at_start)

    # Backwards-compatible alias used by older call sites/tests.
    def _execute(self, operation: Operation, span: Any = None,
                 blame: Any = None) -> Generator[Any, Any, None]:
        yield from _execute_op(self.engine, operation, span, blame)


@dataclass
class OpenLoopResult:
    """Summary of one open-loop run: every arrival accounted for."""

    submitted: int
    completions: Dict[str, int]
    started_at: int
    finished_at: int

    @property
    def operations(self) -> int:
        """Operations that executed to completion (``ok`` bucket)."""
        return self.completions.get(OK, 0)

    @property
    def shed_total(self) -> int:
        return sum(count for reason, count in self.completions.items()
                   if reason != OK)

    @property
    def duration_ns(self) -> int:
        return self.finished_at - self.started_at

    def reconciles(self) -> bool:
        """No zombies: every arrival got exactly one typed completion."""
        return self.submitted == sum(self.completions.values())


class OpenLoopClientPool:
    """Dispatch operations at externally generated arrival instants.

    A single dispatcher process sleeps to each arrival time (relative to
    pool start), takes the front-door decision synchronously, and spawns
    an independent worker for every admitted operation — the open-loop
    property: in-flight count is bounded only by the admission
    controller, never by a thread count.  Latency is measured from the
    *arrival* instant, so front-door queueing is part of the number the
    client sees (and is charged to the ``admission`` blame stage).
    """

    def __init__(self, sim: Simulator, engine: StorageEngine,
                 generator: OperationGenerator,
                 arrivals: Sequence[int],
                 admission: Optional[AdmissionController] = None,
                 on_complete: Optional[LatencySink] = None,
                 label: str = "",
                 blame: Optional[BlameCollector] = None) -> None:
        if not arrivals:
            raise WorkloadError("need at least one arrival instant")
        self.sim = sim
        self.engine = engine
        self.generator = generator
        self.arrivals = arrivals
        self.admission = admission
        self.on_complete = on_complete
        self.label = label
        self.blame = blame
        self.completions: Dict[str, int] = {}
        self.submitted = 0
        self._workers: List[Process] = []

    def start(self) -> Process:
        started_at = self.sim.now
        prefix = f"{self.label}." if self.label else ""
        dispatcher = spawn(self.sim, self._dispatch(prefix),
                           name=f"{prefix}dispatch")

        def waiter():
            yield dispatcher
            if self._workers:
                yield all_of(self.sim, self._workers)
            return OpenLoopResult(submitted=self.submitted,
                                  completions=dict(self.completions),
                                  started_at=started_at,
                                  finished_at=self.sim.now)

        return spawn(self.sim, waiter(), name=f"{prefix}open-loop-pool")

    def _dispatch(self, prefix: str) -> Generator[Any, Any, None]:
        base = self.sim.now
        for index, instant in enumerate(self.arrivals):
            target = base + instant
            if target > self.sim.now:
                yield target - self.sim.now
            operation = self.generator.next_operation()
            self.submitted += 1
            ticket = None
            if self.admission is not None:
                ticket = self.admission.try_admit(
                    operation.kind is OpKind.READ)
                if ticket.shed:
                    # Typed completion at dispatch time: the op never
                    # touches the engine, and is never acknowledged.
                    self.completions[ticket.outcome] = \
                        self.completions.get(ticket.outcome, 0) + 1
                    continue
            self._workers.append(
                spawn(self.sim, self._worker(operation, ticket, index),
                      name=f"{prefix}op{index}"))

    def _worker(self, operation: Operation, ticket: Any,
                index: int) -> Generator[Any, Any, None]:
        tracer = self.sim.tracer
        arrived = self.sim.now
        if ticket is not None and ticket.queued:
            yield ticket.event
        ckpt_at_start = self.engine.checkpoint_running
        span = tracer.begin("client", operation.kind.value, track=index,
                            key=operation.key, during_ckpt=ckpt_at_start) \
            if tracer.enabled else None
        ledger = RequestLedger(
            op=operation.kind.value, key=operation.key,
            during_ckpt=ckpt_at_start,
            span_id=span.span_id if span is not None else None) \
            if self.blame is not None else None
        if ledger is not None:
            ledger.charge(ADMISSION, self.sim.now - arrived)
        yield from _execute_op(self.engine, operation, span, ledger)
        if ticket is not None:
            self.admission.release()
        if span is not None:
            tracer.end(span)
        if ledger is not None:
            ledger.finalize(self.sim.now - arrived)
            self.blame.record(ledger)
        self.completions[OK] = self.completions.get(OK, 0) + 1
        if self.on_complete is not None:
            self.on_complete(operation, self.sim.now - arrived,
                             ckpt_at_start)
