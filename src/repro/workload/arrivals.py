"""Open-loop arrival processes: when do requests *arrive*?

The closed-loop :class:`~repro.workload.client.ClientPool` self-throttles
— each thread waits for its previous operation, so offered load collapses
to whatever the system sustains and saturation is invisible.  Real fleets
see the opposite: traffic arrives on its own clock, independent of
service times, and a checkpoint storm under a burst either sheds load
gracefully or collapses.  This module generates those arrival clocks.

Two processes:

* ``poisson`` — memoryless arrivals at the scheduled rate, the classic
  open-loop reference.  Non-constant rate schedules are realised by
  *thinning*: candidates are drawn at the schedule's peak rate and kept
  with probability ``rate(t) / peak``, which is exact for any bounded
  rate function.
* ``bursts`` — burst *centers* arrive as a (thinned) Poisson process and
  each center carries a bounded-Pareto burst of back-to-back operations,
  giving the heavy-tailed clumping measured in production KV front ends.
  The center rate is scaled by the mean burst size so the long-run
  offered rate still matches ``rate_ops_per_sec``.

Three rate schedules: ``constant``, ``diurnal`` (sinusoidal swing, the
day/night cycle scaled into simulated milliseconds) and ``flash-crowd``
(a rectangular rate spike, the "everyone refreshes at once" event).

Everything is a pure function of ``(spec, rng)`` with the rng a
:class:`~repro.common.rng.SeededRng` fork, so same-seed runs produce
byte-identical arrival streams (property-tested in
``tests/test_arrivals.py``).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.units import MS, SEC
from repro.common.rng import SeededRng

ARRIVAL_PROCESSES = ("poisson", "bursts")
RATE_SCHEDULES = ("constant", "diurnal", "flash-crowd")


@dataclass(frozen=True)
class ArrivalSpec:
    """One tenant's open-loop traffic shape (frozen, hashable)."""

    rate_ops_per_sec: float = 50_000.0
    """Long-run mean offered load, operations per simulated second."""

    process: str = "poisson"
    """``poisson`` or ``bursts`` (bounded-Pareto burst sizes)."""

    schedule: str = "constant"
    """``constant``, ``diurnal`` or ``flash-crowd``."""

    # --- diurnal schedule ---------------------------------------------
    diurnal_period_ns: int = 40 * MS
    """One full day/night cycle, scaled into simulated time."""

    diurnal_amplitude: float = 0.6
    """Rate swings between ``(1 - a)`` and ``(1 + a)`` times the base."""

    # --- flash-crowd schedule -----------------------------------------
    crowd_start_ns: int = 10 * MS
    crowd_duration_ns: int = 10 * MS
    crowd_multiplier: float = 4.0
    """Rate inside the crowd window, as a multiple of the base rate."""

    # --- burst process -------------------------------------------------
    burst_shape: float = 1.4
    """Bounded-Pareto tail index; smaller = heavier burst-size tail."""

    burst_min_ops: int = 4
    burst_max_ops: int = 64
    burst_gap_ns: int = 5_000
    """Intra-burst inter-arrival gap (back-to-back requests)."""

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ConfigError(f"arrival process must be one of "
                              f"{ARRIVAL_PROCESSES}, got {self.process!r}")
        if self.schedule not in RATE_SCHEDULES:
            raise ConfigError(f"rate schedule must be one of "
                              f"{RATE_SCHEDULES}, got {self.schedule!r}")
        if self.rate_ops_per_sec <= 0.0:
            raise ConfigError("rate_ops_per_sec must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period_ns < 1 or self.crowd_duration_ns < 0:
            raise ConfigError("schedule windows must be positive")
        if self.crowd_multiplier < 1.0:
            raise ConfigError("crowd_multiplier must be >= 1")
        if self.burst_shape <= 0.0:
            raise ConfigError("burst_shape must be positive")
        if not 1 <= self.burst_min_ops <= self.burst_max_ops:
            raise ConfigError("need 1 <= burst_min_ops <= burst_max_ops")
        if self.burst_gap_ns < 1:
            raise ConfigError("burst_gap_ns must be >= 1")

    # ------------------------------------------------------------------
    def rate_at(self, t_ns: float) -> float:
        """Instantaneous offered rate (ops/s) at simulated time ``t_ns``."""
        base = self.rate_ops_per_sec
        if self.schedule == "diurnal":
            phase = 2.0 * math.pi * (t_ns % self.diurnal_period_ns) \
                / self.diurnal_period_ns
            return base * (1.0 + self.diurnal_amplitude * math.sin(phase))
        if self.schedule == "flash-crowd":
            inside = self.crowd_start_ns <= t_ns \
                < self.crowd_start_ns + self.crowd_duration_ns
            return base * self.crowd_multiplier if inside else base
        return base

    def peak_rate(self) -> float:
        """Upper bound of the rate schedule (the thinning envelope)."""
        base = self.rate_ops_per_sec
        if self.schedule == "diurnal":
            return base * (1.0 + self.diurnal_amplitude)
        if self.schedule == "flash-crowd":
            return base * self.crowd_multiplier
        return base

    def mean_burst_ops(self) -> float:
        """Expected bounded-Pareto burst size (1.0 for ``poisson``)."""
        if self.process != "bursts":
            return 1.0
        low, high, alpha = (float(self.burst_min_ops),
                            float(self.burst_max_ops), self.burst_shape)
        if low == high:
            return low
        if abs(alpha - 1.0) < 1e-9:
            return low * high / (high - low) * math.log(high / low)
        la, ha = low ** alpha, high ** alpha
        return (la / (1.0 - (low / high) ** alpha)) * \
            (alpha / (alpha - 1.0)) * \
            (low ** (1.0 - alpha) - high ** (1.0 - alpha))


def bounded_pareto(rng: SeededRng, alpha: float, low: int, high: int) -> int:
    """One bounded-Pareto draw in ``[low, high]`` (inverse CDF)."""
    if low >= high:
        return low
    u = rng.random()
    la, ha = float(low) ** alpha, float(high) ** alpha
    x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)
    return max(low, min(high, int(x)))


def arrival_times(spec: ArrivalSpec, rng: SeededRng,
                  count: int) -> List[int]:
    """Exactly ``count`` non-decreasing integer-ns arrival instants.

    A pure function of ``(spec, rng state, count)``: forking the same
    seed lineage reproduces the identical list byte for byte.
    """
    if count < 1:
        raise ConfigError("arrival count must be >= 1")
    peak = spec.peak_rate()
    lam = peak / SEC  # arrivals per nanosecond at the envelope rate
    constant = spec.schedule == "constant"
    t = 0.0
    if spec.process == "poisson":
        times: List[int] = []
        while len(times) < count:
            t += rng.expovariate(lam)
            # Thinning: keep a candidate with probability rate(t)/peak.
            if not constant and rng.random() * peak > spec.rate_at(t):
                continue
            times.append(int(t))
        return times
    # bursts: centers are a thinned Poisson process at rate/mean_size,
    # each carrying a bounded-Pareto clump of back-to-back arrivals.
    center_lam = lam / spec.mean_burst_ops()
    raw: List[int] = []
    while len(raw) < count:
        t += rng.expovariate(center_lam)
        if not constant and rng.random() * peak > spec.rate_at(t):
            continue
        size = bounded_pareto(rng, spec.burst_shape,
                              spec.burst_min_ops, spec.burst_max_ops)
        start = int(t)
        raw.extend(start + i * spec.burst_gap_ns for i in range(size))
    # Long bursts can overlap the next center; restore global time order
    # before truncating to the requested budget.
    raw.sort()
    return raw[:count]


def merge_streams(streams: Sequence[Sequence[int]]
                  ) -> List[Tuple[int, int]]:
    """Fan per-tenant arrival streams into one ``(t_ns, tenant)`` feed.

    Each input stream must be non-decreasing (as produced by
    :func:`arrival_times`); the merge is time-ordered with ties broken
    by tenant index, so the fan-in is deterministic.
    """
    tagged = []
    for tenant, stream in enumerate(streams):
        previous = 0
        for t in stream:
            if t < previous:
                raise ConfigError(
                    f"stream {tenant} is not time-ordered at t={t}")
            previous = t
        tagged.append([(t, tenant) for t in stream])
    return list(heapq.merge(*tagged))
