"""YCSB workload mixes and the per-thread operation generator.

The paper evaluates three write-heavy mixes (§IV-D):

* Workload A  — 50 % read, 50 % update
* Workload F  — 50 % read, 50 % read-modify-write
* Workload WO — 100 % update (write-only)

Read-dominant YCSB B (95/5) and read-only YCSB C are provided as well for
completeness — useful as sanity baselines where checkpointing is nearly
irrelevant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import WorkloadError
from repro.common.rng import SeededRng
from repro.workload.distributions import KeyDistribution


class OpKind(enum.Enum):
    """Primitive operation types."""

    READ = "read"
    UPDATE = "update"
    READ_MODIFY_WRITE = "rmw"


@dataclass(frozen=True)
class Operation:
    """One generated client operation."""

    kind: OpKind
    key: int


@dataclass(frozen=True)
class WorkloadSpec:
    """Operation-mix proportions."""

    name: str
    read_proportion: float
    update_proportion: float
    rmw_proportion: float

    def __post_init__(self) -> None:
        total = (self.read_proportion + self.update_proportion +
                 self.rmw_proportion)
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(
                f"workload {self.name}: proportions sum to {total}, not 1")
        for value in (self.read_proportion, self.update_proportion,
                      self.rmw_proportion):
            if value < 0:
                raise WorkloadError("proportions must be non-negative")

    @property
    def write_fraction(self) -> float:
        """Fraction of operations that journal an update."""
        return self.update_proportion + self.rmw_proportion


WORKLOAD_A = WorkloadSpec("A", read_proportion=0.5, update_proportion=0.5,
                          rmw_proportion=0.0)
WORKLOAD_B = WorkloadSpec("B", read_proportion=0.95, update_proportion=0.05,
                          rmw_proportion=0.0)
WORKLOAD_C = WorkloadSpec("C", read_proportion=1.0, update_proportion=0.0,
                          rmw_proportion=0.0)
WORKLOAD_F = WorkloadSpec("F", read_proportion=0.5, update_proportion=0.0,
                          rmw_proportion=0.5)
WORKLOAD_WO = WorkloadSpec("WO", read_proportion=0.0, update_proportion=1.0,
                           rmw_proportion=0.0)

WORKLOADS = {"A": WORKLOAD_A, "B": WORKLOAD_B, "C": WORKLOAD_C,
             "F": WORKLOAD_F, "WO": WORKLOAD_WO}


def workload_by_name(name: str) -> WorkloadSpec:
    """Look up one of the paper's workloads by letter."""
    try:
        return WORKLOADS[name.upper()]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}"
        ) from None


class OperationGenerator:
    """Draws operations for one client thread."""

    def __init__(self, spec: WorkloadSpec, keys: KeyDistribution,
                 rng: SeededRng) -> None:
        self.spec = spec
        self.keys = keys
        self._rng = rng

    def next_operation(self) -> Operation:
        """Draw one operation according to the mix."""
        draw = self._rng.random()
        if draw < self.spec.read_proportion:
            kind = OpKind.READ
        elif draw < self.spec.read_proportion + self.spec.update_proportion:
            kind = OpKind.UPDATE
        else:
            kind = OpKind.READ_MODIFY_WRITE
        return Operation(kind=kind, key=self.keys.next_key())
