"""YCSB-like workload generation: distributions, mixes, sizes, clients."""

from repro.workload.client import ClientPool, ClientPoolResult
from repro.workload.distributions import (
    DISTRIBUTIONS,
    KeyDistribution,
    ScrambledZipfianKeys,
    UniformKeys,
    ZipfianKeys,
    fnv1a_64,
    make_distribution,
    zeta,
)
from repro.workload.records import (
    FixedSize,
    MixedSizes,
    RecordSizeModel,
    mixed_pattern,
    small_value_default,
)
from repro.workload.ycsb import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_F,
    WORKLOAD_WO,
    WORKLOADS,
    Operation,
    OperationGenerator,
    OpKind,
    WorkloadSpec,
    workload_by_name,
)

__all__ = [
    "ClientPool",
    "ClientPoolResult",
    "DISTRIBUTIONS",
    "KeyDistribution",
    "ScrambledZipfianKeys",
    "UniformKeys",
    "ZipfianKeys",
    "fnv1a_64",
    "make_distribution",
    "zeta",
    "FixedSize",
    "MixedSizes",
    "RecordSizeModel",
    "mixed_pattern",
    "small_value_default",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_F",
    "WORKLOAD_WO",
    "WORKLOADS",
    "Operation",
    "OperationGenerator",
    "OpKind",
    "WorkloadSpec",
    "workload_by_name",
]
