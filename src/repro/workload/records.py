"""Record-size models.

The main experiments use small key-value records (the paper focuses on
updates of 512 B or less, §II-C); the sector-aligned-journaling study uses
"four different patterns that randomly mix various record sizes from 128
to 4096 bytes" (§IV-A).  Sizes are assigned per key at load time and stay
fixed across updates.
"""

from __future__ import annotations

import abc
import hashlib
import random
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import WorkloadError


class RecordSizeModel(abc.ABC):
    """Deterministically assigns a value size to each key."""

    @abc.abstractmethod
    def size_for_key(self, key: int) -> int:
        """Value size in bytes for ``key`` (stable per key)."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Model label used in reports."""

    def sizes(self, num_keys: int) -> List[Tuple[int, int]]:
        """``(key, size)`` pairs for keys ``0 .. num_keys-1``."""
        return [(key, self.size_for_key(key)) for key in range(num_keys)]


class FixedSize(RecordSizeModel):
    """Every record the same size."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes < 1:
            raise WorkloadError("record size must be >= 1")
        self.size_bytes = size_bytes

    @property
    def name(self) -> str:
        return f"fixed-{self.size_bytes}"

    def size_for_key(self, key: int) -> int:
        return self.size_bytes


class MixedSizes(RecordSizeModel):
    """Sizes drawn from a weighted choice, hashed per key (stable)."""

    def __init__(self, label: str, sizes: Sequence[int],
                 weights: Sequence[float], seed: int = 1234) -> None:
        if len(sizes) != len(weights) or not sizes:
            raise WorkloadError("sizes and weights must be equal, non-empty")
        if any(s < 1 for s in sizes):
            raise WorkloadError("record sizes must be >= 1")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise WorkloadError("weights must be non-negative, sum > 0")
        self._label = label
        self.size_choices = list(sizes)
        total = float(sum(weights))
        self._cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)
        self._seed = seed
        self._cache: Dict[int, int] = {}
        self._rng = random.Random()

    @property
    def name(self) -> str:
        return self._label

    def size_for_key(self, key: int) -> int:
        size = self._cache.get(key)
        if size is None:
            # Same draw as SeededRng(seed, "sizes").fork(str(key)).random()
            # — the child seed only depends on (seed, key), so one shared
            # Random re-seeded per key replaces two throwaway SeededRng
            # constructions on this hot load-time path.
            digest = hashlib.sha256(f"{self._seed}/{key}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little") \
                & 0x7FFF_FFFF_FFFF_FFFF
            self._rng.seed(child_seed)
            draw = self._rng.random()
            index = 0
            while draw > self._cumulative[index]:
                index += 1
            size = self.size_choices[index]
            self._cache[key] = size
        return size


def mixed_pattern(pattern: str, seed: int = 1234) -> MixedSizes:
    """The four mixed-record-size patterns of the Figure 13(b) study.

    ==== =========================================================
    P1   small-value heavy: mostly 128-512 B (chat/session stores)
    P2   small-to-mid mix: 128-1024 B uniform-ish
    P3   mid-size records: 512-2048 B
    P4   full spread: 128-4096 B uniform over classes
    ==== =========================================================
    """
    patterns = {
        "P1": ([128, 256, 384, 512], [0.4, 0.3, 0.15, 0.15]),
        "P2": ([128, 256, 512, 768, 1024], [0.2, 0.2, 0.2, 0.2, 0.2]),
        "P3": ([512, 1024, 1536, 2048], [0.3, 0.3, 0.2, 0.2]),
        "P4": ([128, 256, 512, 1024, 2048, 4096],
               [1 / 6, 1 / 6, 1 / 6, 1 / 6, 1 / 6, 1 / 6]),
    }
    try:
        sizes, weights = patterns[pattern.upper()]
    except KeyError:
        raise WorkloadError(
            f"unknown pattern {pattern!r}; expected P1..P4") from None
    return MixedSizes(pattern.upper(), sizes, weights, seed=seed)


def small_value_default(seed: int = 1234) -> MixedSizes:
    """The main-evaluation size mix.

    Small records around the paper's working sizes (§II-B uses 1 KiB
    values; §II-C focuses on updates of 512 B or less): mostly one sector
    or a small number of sectors, with a sub-sector tail that exercises
    the PARTIAL/MERGED path.
    """
    return MixedSizes("small-default", [128, 256, 512, 768, 1024],
                      [0.1, 0.15, 0.35, 0.2, 0.2], seed=seed)
